#include "mon/timeseries.hh"

#include <utility>

#include "util/logging.hh"

namespace flash::mon
{

namespace
{

bool
numberField(const util::JsonValue &v, const char *key, double &out)
{
    const util::JsonValue *f = v.find(key);
    if (f == nullptr || !f->isNumber())
        return false;
    out = f->number;
    return true;
}

} // namespace

void
ReadTotals::merge(const ReadTotals &other)
{
    windows += other.windows;
    reads.merge(other.reads);
    retries.merge(other.retries);
    senses.merge(other.senses);
    assists.merge(other.assists);
    exact = exact && other.exact;
}

std::uint64_t
ReadTotals::readsInt() const
{
    return static_cast<std::uint64_t>(reads.value());
}

std::uint64_t
ReadTotals::retriesInt() const
{
    return static_cast<std::uint64_t>(retries.value());
}

std::uint64_t
ReadTotals::sensesInt() const
{
    return static_cast<std::uint64_t>(senses.value());
}

std::uint64_t
ReadTotals::assistsInt() const
{
    return static_cast<std::uint64_t>(assists.value());
}

DeviceSeries::DeviceSeries(int device, std::size_t capacity)
    : device_(device), capacity_(capacity)
{
    util::fatalIf(capacity_ < 2, "DeviceSeries: capacity < 2");
}

void
DeviceSeries::addSsd(const HealthRecord &rec)
{
    if (cohort_.empty())
        cohort_ = cohortOfContext(rec.context);

    WindowSample s;
    s.window = rec.window;
    s.tUs = rec.tUs;
    s.finalSnapshot = rec.finalSnapshot;
    numberField(rec.json, "reads", s.reads);
    s.exactDeltas = numberField(rec.json, "retries", s.retries)
        & numberField(rec.json, "senses", s.senses)
        & numberField(rec.json, "assists", s.assists);
    numberField(rec.json, "retries_per_read", s.retriesPerRead);
    numberField(rec.json, "sense_ops_per_read", s.sensesPerRead);
    numberField(rec.json, "assist_reads_per_read", s.assistsPerRead);
    if (!s.exactDeltas) {
        // Schema-1 stream: reconstruct approximate deltas from the
        // rates; totals are then flagged non-exact.
        s.retries = s.retriesPerRead * s.reads;
        s.senses = s.sensesPerRead * s.reads;
        s.assists = s.assistsPerRead * s.reads;
    }
    s.haveLatency = numberField(rec.json, "read_p99_us", s.readP99Us);
    s.haveScrub = numberField(rec.json, "scrub_warm_fraction",
                              s.warmFraction);
    numberField(rec.json, "scrub_refresh_queue", s.refreshQueue);
    numberField(rec.json, "scrub_warm_read_rate", s.warmReadRate);
    s.haveModel =
        numberField(rec.json, "model_mean_confidence", s.modelConfidence);
    numberField(rec.json, "model_confident_fraction",
                s.modelConfidentFraction);

    if (ring_.size() == capacity_)
        ring_.erase(ring_.begin());
    ring_.push_back(std::move(s));

    ++totals_.windows;
    totals_.reads.add(ring_.back().reads);
    totals_.retries.add(ring_.back().retries);
    totals_.senses.add(ring_.back().senses);
    totals_.assists.add(ring_.back().assists);
    totals_.exact = totals_.exact && ring_.back().exactDeltas;
}

void
DeviceSeries::addChip(const HealthRecord &rec)
{
    if (cohort_.empty())
        cohort_ = cohortOfContext(rec.context);
    double residual = 0.0;
    if (numberField(rec.json, "model_residual", residual)) {
        haveResidual_ = true;
        lastResidual_ = residual;
    }
}

const WindowSample *
DeviceSeries::latest() const
{
    return ring_.empty() ? nullptr : &ring_.back();
}

const WindowSample *
DeviceSeries::lookback(std::size_t back) const
{
    if (back >= ring_.size())
        return nullptr;
    return &ring_[ring_.size() - 1 - back];
}

FleetSeries::FleetSeries(std::size_t ringCapacity)
    : ringCapacity_(ringCapacity)
{
}

const DeviceSeries *
FleetSeries::add(const HealthRecord &rec)
{
    auto it = devices_.find(rec.device);
    if (it == devices_.end()) {
        it = devices_
                 .emplace(rec.device,
                          DeviceSeries(rec.device, ringCapacity_))
                 .first;
    }
    if (rec.kind == "ssd") {
        it->second.addSsd(rec);
        return &it->second;
    }
    if (rec.kind == "chip")
        it->second.addChip(rec);
    return nullptr;
}

ReadTotals
FleetSeries::rollup() const
{
    // ExactSum merges are order-invariant, so this id-order loop
    // produces the same bits as any other permutation — determinism
    // by construction, not by iteration-order luck.
    ReadTotals out;
    for (const auto &[id, dev] : devices_) {
        (void)id;
        out.merge(dev.totals());
    }
    return out;
}

std::string
cohortOfContext(const std::string &context)
{
    if (context.rfind("fleet.", 0) == 0)
        return context.substr(6);
    return context.empty() ? "n/a" : context;
}

std::string
reconcileReadTotals(const ReadTotals &totals,
                    const std::map<std::string, std::uint64_t> &counters)
{
    if (!totals.exact) {
        return "health stream lacks raw window deltas (schema 1): "
               "exact reconciliation impossible";
    }
    const auto check = [&](const char *name,
                           std::uint64_t have) -> std::string {
        const auto it = counters.find(name);
        if (it == counters.end())
            return std::string("fleet rollup lacks counter ") + name;
        if (it->second != have) {
            return std::string(name) + " mismatch: health windows sum to "
                + std::to_string(have) + ", fleet rollup holds "
                + std::to_string(it->second);
        }
        return "";
    };
    std::string err;
    if (!(err = check("fleet.ssd.read.page_ops", totals.readsInt()))
             .empty())
        return err;
    if (!(err = check("fleet.ssd.read.attempts",
                      totals.readsInt() + totals.retriesInt()))
             .empty())
        return err;
    if (!(err = check("fleet.ssd.read.sense_ops", totals.sensesInt()))
             .empty())
        return err;
    if (!(err = check("fleet.ssd.read.assist_reads",
                      totals.assistsInt()))
             .empty())
        return err;
    return "";
}

} // namespace flash::mon
