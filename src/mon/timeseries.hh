/**
 * @file
 * Bounded per-device time series over health "ssd" snapshots, with
 * exact fleet rollups.
 *
 * Every device keeps a fixed-capacity ring of WindowSamples (the
 * alert rules look back over it) plus running totals of the raw
 * windowed read deltas the schema-2 health snapshots carry. The
 * totals accumulate in util::ExactSum superaccumulators, so a merged
 * rollup is a pure function of the record multiset — any demux or
 * merge order produces identical values — and, because the deltas
 * are integer-valued by construction, the rounded totals reconcile
 * with *integer equality* against the `fleet.ssd.read.*` counters of
 * the same run's fleet rollup (reconcileReadTotals()). Chip-probe
 * records contribute the model residual/confidence side channel.
 */

#ifndef SENTINELFLASH_MON_TIMESERIES_HH
#define SENTINELFLASH_MON_TIMESERIES_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "mon/health_follow.hh"
#include "util/exact_sum.hh"

namespace flash::mon
{

/** One ssd-snapshot window of one device. */
struct WindowSample
{
    std::int64_t window = -1; ///< per-device record index
    double tUs = 0.0;
    bool finalSnapshot = false;

    /** Raw windowed deltas (schema >= 2; integer-valued). */
    double reads = 0.0;
    double retries = 0.0;
    double senses = 0.0;
    double assists = 0.0;
    bool exactDeltas = false; ///< raw deltas present (vs rate-derived)

    /** Windowed rates as emitted. */
    double retriesPerRead = 0.0;
    double sensesPerRead = 0.0;
    double assistsPerRead = 0.0;

    bool haveLatency = false;
    double readP99Us = 0.0;

    bool haveScrub = false;
    double warmFraction = 0.0;
    double refreshQueue = 0.0;
    double warmReadRate = 0.0;

    bool haveModel = false;
    double modelConfidence = 0.0;
    double modelConfidentFraction = 0.0;
};

/** Exact read-op totals of one device or a whole fleet. */
struct ReadTotals
{
    std::uint64_t windows = 0; ///< ssd snapshots accumulated
    util::ExactSum reads;
    util::ExactSum retries;
    util::ExactSum senses;
    util::ExactSum assists;
    bool exact = true; ///< all contributing windows carried raw deltas

    void merge(const ReadTotals &other);

    /** Rounded totals as integers (deltas are integer-valued). */
    std::uint64_t readsInt() const;
    std::uint64_t retriesInt() const;
    std::uint64_t sensesInt() const;
    std::uint64_t assistsInt() const;
};

/** Ring of the last N windows of one device. */
class DeviceSeries
{
  public:
    DeviceSeries(int device, std::size_t capacity);

    /** Record an ssd snapshot (kind "ssd"). */
    void addSsd(const HealthRecord &rec);

    /** Record a chip probe's model side channel (kind "chip"). */
    void addChip(const HealthRecord &rec);

    int device() const { return device_; }

    /** Cohort from the record context ("fleet.X" -> "X"). */
    const std::string &cohort() const { return cohort_; }

    /** Windows currently held (<= capacity). */
    std::size_t size() const { return ring_.size(); }

    /** Ssd snapshots ever seen (not capped by the ring). */
    std::uint64_t windowsSeen() const { return totals_.windows; }

    /** Newest sample (nullptr while empty). */
    const WindowSample *latest() const;

    /**
     * Sample @p back windows before the newest (back 0 = latest);
     * nullptr when the ring does not reach that far.
     */
    const WindowSample *lookback(std::size_t back) const;

    const ReadTotals &totals() const { return totals_; }

    bool haveResidual() const { return haveResidual_; }
    double lastResidual() const { return lastResidual_; }

  private:
    int device_;
    std::size_t capacity_;
    std::string cohort_;
    std::vector<WindowSample> ring_; ///< oldest-first, bounded
    ReadTotals totals_;
    bool haveResidual_ = false;
    double lastResidual_ = 0.0;
};

/** Demultiplexed per-device series of one health stream. */
class FleetSeries
{
  public:
    explicit FleetSeries(std::size_t ringCapacity);

    /**
     * Route one record to its device's series. Returns the updated
     * series when the record was an ssd snapshot (the alert engine
     * evaluates on those), nullptr otherwise.
     */
    const DeviceSeries *add(const HealthRecord &rec);

    /** Per-device series, device-id order. */
    const std::map<int, DeviceSeries> &devices() const
    {
        return devices_;
    }

    /** Exact rollup over all devices (id-order merge; see ExactSum). */
    ReadTotals rollup() const;

  private:
    std::size_t ringCapacity_;
    std::map<int, DeviceSeries> devices_;
};

/** Cohort name from a health context ("fleet.worn" -> "worn"). */
std::string cohortOfContext(const std::string &context);

/**
 * Reconcile monitor totals against the `fleet.ssd.read.*` counters
 * of the same run's fleet rollup record, with integer equality:
 * page_ops == reads, attempts == reads + retries, sense_ops ==
 * senses, assist_reads == assists. Empty string when everything
 * matches, else a description of the first mismatch.
 */
std::string
reconcileReadTotals(const ReadTotals &totals,
                    const std::map<std::string, std::uint64_t> &counters);

} // namespace flash::mon

#endif // SENTINELFLASH_MON_TIMESERIES_HH
