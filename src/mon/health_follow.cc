#include "mon/health_follow.hh"

#include <utility>

#include "util/logging.hh"

namespace flash::mon
{

HealthFollower::HealthFollower(Sink sink) : sink_(std::move(sink))
{
    util::fatalIf(!sink_, "HealthFollower: null sink");
}

void
HealthFollower::feed(std::string_view chunk)
{
    util::fatalIf(finished_, "HealthFollower: feed after finish");
    std::size_t start = 0;
    while (start < chunk.size()) {
        const std::size_t nl = chunk.find('\n', start);
        if (nl == std::string_view::npos) {
            partial_.append(chunk.substr(start));
            return;
        }
        partial_.append(chunk.substr(start, nl - start));
        consumeLine(partial_);
        partial_.clear();
        start = nl + 1;
    }
}

void
HealthFollower::finish()
{
    if (finished_)
        return;
    finished_ = true;
    if (partial_.empty())
        return;
    // An unterminated tail is usually a truncated write; if the bytes
    // happen to form a complete record, take it, otherwise count the
    // truncation on top of the malformed line.
    const std::uint64_t malformed_before = stats_.malformed;
    consumeLine(partial_);
    partial_.clear();
    if (stats_.malformed > malformed_before)
        ++stats_.truncatedTail;
}

void
HealthFollower::consumeLine(const std::string &line)
{
    if (line.find_first_not_of(" \t\r") == std::string::npos)
        return;
    ++stats_.lines;

    HealthRecord rec;
    try {
        rec.json = util::parseJson(line);
    } catch (const util::FatalError &) {
        ++stats_.malformed;
        return;
    }
    if (!rec.json.isObject()) {
        ++stats_.malformed;
        return;
    }
    const util::JsonValue *kind = rec.json.find("health");
    if (kind == nullptr
        || kind->type != util::JsonValue::Type::String) {
        ++stats_.ignored; // some other JSON-lines record
        return;
    }
    rec.kind = kind->string;
    if (const util::JsonValue *f = rec.json.find("context");
        f != nullptr && f->type == util::JsonValue::Type::String)
        rec.context = f->string;
    if (const util::JsonValue *f = rec.json.find("device");
        f != nullptr && f->isNumber())
        rec.device = static_cast<int>(f->number);
    if (const util::JsonValue *f = rec.json.find("schema");
        f != nullptr && f->isNumber())
        rec.schema = static_cast<int>(f->number);
    if (const util::JsonValue *f = rec.json.find("t_us");
        f != nullptr && f->isNumber())
        rec.tUs = f->number;
    if (const util::JsonValue *f = rec.json.find("final");
        f != nullptr && f->isNumber())
        rec.finalSnapshot = f->number != 0.0;
    stats_.maxSchema = std::max(stats_.maxSchema, rec.schema);

    // Per-device window continuity. The emitting monitor stamps a
    // strictly increasing index on every record, so anything other
    // than last+1 is a discontinuity worth reporting.
    const util::JsonValue *w = rec.json.find("window");
    auto [it, inserted] = lastWindow_.try_emplace(rec.device, kNoWindow);
    if (w != nullptr && w->isNumber() && w->number >= 0.0) {
        rec.window = static_cast<std::int64_t>(w->number);
        if (!inserted && it->second != kNoWindow) {
            if (rec.window > it->second + 1) {
                ++stats_.gaps;
                stats_.missedWindows += static_cast<std::uint64_t>(
                    rec.window - it->second - 1);
            } else if (rec.window <= it->second) {
                ++stats_.restarts;
            }
        }
        it->second = rec.window;
    } else {
        ++stats_.unwindowed; // schema-1 stream: no continuity check
    }

    ++stats_.records;
    sink_(rec);
}

} // namespace flash::mon
