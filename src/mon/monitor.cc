#include "mon/monitor.hh"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <utility>

#include "util/logging.hh"
#include "util/table.hh"

namespace flash::mon
{

void
MonitorConfig::validate() const
{
    util::fatalIf(frameIntervalUs <= 0.0,
                  "MonitorConfig: frameIntervalUs <= 0");
    util::fatalIf(topK < 1, "MonitorConfig: topK < 1");
    util::fatalIf(ringCapacity < 2, "MonitorConfig: ringCapacity < 2");
    for (const AlertRule &r : rules)
        r.validate();
}

std::vector<AlertRule>
defaultRules()
{
    std::vector<AlertRule> rules;
    {
        AlertRule r;
        r.name = "retry_rate_high";
        r.metric = "retries_per_read";
        r.kind = RuleKind::Threshold;
        r.direction = Direction::Above;
        r.threshold = 2.0;
        r.severity = Severity::Warn;
        rules.push_back(r);
    }
    {
        AlertRule r;
        r.name = "retry_rate_critical";
        r.metric = "retries_per_read";
        r.kind = RuleKind::Threshold;
        r.direction = Direction::Above;
        r.threshold = 4.0;
        r.severity = Severity::Critical;
        rules.push_back(r);
    }
    {
        AlertRule r;
        r.name = "retry_rate_spiking";
        r.metric = "retries_per_read";
        r.kind = RuleKind::RateOfChange;
        r.direction = Direction::Above;
        r.threshold = 1.5;
        r.lookback = 4;
        r.severity = Severity::Warn;
        rules.push_back(r);
    }
    {
        AlertRule r;
        r.name = "refresh_queue_stuck";
        r.metric = "refresh_queue";
        r.kind = RuleKind::StuckAt;
        r.direction = Direction::Above;
        r.threshold = 0.0;
        r.lookback = 4;
        r.severity = Severity::Warn;
        rules.push_back(r);
    }
    {
        AlertRule r;
        r.name = "retry_budget_burn";
        r.metric = "retries";
        r.kind = RuleKind::BudgetBurn;
        r.direction = Direction::Above;
        r.threshold = 5000.0;
        r.lookback = 8;
        r.severity = Severity::Critical;
        rules.push_back(r);
    }
    {
        AlertRule r;
        r.name = "model_confidence_low";
        r.metric = "model_confidence";
        r.kind = RuleKind::Threshold;
        r.direction = Direction::Below;
        r.threshold = 0.2;
        r.severity = Severity::Info;
        rules.push_back(r);
    }
    return rules;
}

FleetMonitor::FleetMonitor(MonitorConfig cfg, std::ostream &frames,
                           std::ostream *alerts)
    : cfg_(std::move(cfg)), frames_(frames), alerts_(alerts),
      follower_([this](const HealthRecord &rec) { onRecord(rec); }),
      series_(cfg_.ringCapacity),
      engine_(cfg_.rules.empty() ? defaultRules() : cfg_.rules),
      outliers_(cfg_.mad)
{
    cfg_.validate();
}

void
FleetMonitor::feed(std::string_view chunk)
{
    follower_.feed(chunk);
}

const FollowStats &
FleetMonitor::followStats() const
{
    return follower_.stats();
}

void
FleetMonitor::noteFired(const Alert &a)
{
    ++fired_;
    worst_ = std::max(worst_, a.severity);
}

void
FleetMonitor::emitAlerts(std::vector<Alert> &alerts)
{
    for (Alert &a : alerts) {
        if (a.event == "fire") {
            noteFired(a);
            active_[{a.rule, a.device}] = a;
        } else {
            active_.erase({a.rule, a.device});
        }
        if (alerts_ != nullptr) {
            writeAlertJson(*alerts_, a);
            *alerts_ << '\n';
        }
    }
    alerts.clear();
}

void
FleetMonitor::onRecord(const HealthRecord &rec)
{
    std::vector<Alert> alerts;
    const DeviceSeries *dev = series_.add(rec);
    if (dev != nullptr) {
        engine_.onSample(*dev, alerts);
        emitAlerts(alerts);
    }

    // The frame clock is the maximum simulated time seen so far; a
    // boundary crossing emits exactly one frame stamped with the
    // boundary time, so frames depend on stream content alone.
    simTUs_ = std::max(simTUs_, rec.tUs);
    const auto boundary =
        static_cast<std::int64_t>(simTUs_ / cfg_.frameIntervalUs);
    if (boundary > lastFrame_) {
        lastFrame_ = boundary;
        const double frameTUs =
            static_cast<double>(boundary) * cfg_.frameIntervalUs;
        if (cfg_.madEnabled) {
            outliers_.evaluate(series_, frameTUs, alerts);
            emitAlerts(alerts);
        }
        emitFrame(frameTUs);
    }
}

void
FleetMonitor::emitFrame(double frameTUs)
{
    ++frames_emitted_;
    frames_ << "== frame " << frames_emitted_ << "  t_us="
            << util::fmt(frameTUs, 0) << "  devices="
            << series_.devices().size() << " ==\n";

    // Cohort rollups (cohort-name order; ExactSum merge per cohort).
    std::map<std::string, ReadTotals> cohorts;
    std::map<std::string, int> cohortDevices;
    for (const auto &[id, dev] : series_.devices()) {
        (void)id;
        if (dev.latest() == nullptr)
            continue;
        cohorts[dev.cohort()].merge(dev.totals());
        ++cohortDevices[dev.cohort()];
    }
    util::TextTable rollup;
    rollup.header({"cohort", "devices", "windows", "reads",
                   "retries/read", "senses/read", "assists/read"});
    for (const auto &[cohort, totals] : cohorts) {
        const double reads = totals.reads.value();
        const double denom = reads > 0.0 ? reads : 1.0;
        rollup.row({cohort, util::fmtInt(cohortDevices[cohort]),
                    util::fmtInt(static_cast<std::int64_t>(
                        totals.windows)),
                    util::fmtInt(static_cast<std::int64_t>(reads)),
                    util::fmt(totals.retries.value() / denom, 4),
                    util::fmt(totals.senses.value() / denom, 4),
                    util::fmt(totals.assists.value() / denom, 4)});
    }
    rollup.print(frames_);

    // Top offenders by latest-window retry rate (ties: device id).
    std::vector<const DeviceSeries *> devs;
    for (const auto &[id, dev] : series_.devices()) {
        (void)id;
        if (dev.latest() != nullptr)
            devs.push_back(&dev);
    }
    std::stable_sort(devs.begin(), devs.end(),
                     [](const DeviceSeries *a, const DeviceSeries *b) {
                         const double ra = a->latest()->retriesPerRead;
                         const double rb = b->latest()->retriesPerRead;
                         if (ra != rb)
                             return ra > rb;
                         return a->device() < b->device();
                     });
    if (devs.size() > static_cast<std::size_t>(cfg_.topK))
        devs.resize(static_cast<std::size_t>(cfg_.topK));
    frames_ << "top offenders by retries/read (latest window):\n";
    util::TextTable top;
    top.header({"device", "cohort", "window", "retries/read",
                "senses/read", "read_p99_us"});
    for (const DeviceSeries *dev : devs) {
        const WindowSample &s = *dev->latest();
        top.row({util::fmtInt(dev->device()), dev->cohort(),
                 util::fmtInt(s.window),
                 util::fmt(s.retriesPerRead, 4),
                 util::fmt(s.sensesPerRead, 4),
                 s.haveLatency ? util::fmt(s.readP99Us, 2) : "n/a"});
    }
    top.print(frames_);

    // Active alerts, keyed order (rule name, then device id).
    frames_ << "active alerts (" << active_.size() << "):\n";
    if (!active_.empty()) {
        util::TextTable tbl;
        tbl.header({"severity", "rule", "device", "cohort", "window",
                    "value", "threshold"});
        for (const auto &[key, a] : active_) {
            (void)key;
            tbl.row({severityName(a.severity), a.rule,
                     util::fmtInt(a.device), a.cohort,
                     util::fmtInt(a.window), util::fmt(a.value, 4),
                     util::fmt(a.threshold, 4)});
        }
        tbl.print(frames_);
    }
    frames_ << "\n";
}

void
FleetMonitor::finish()
{
    if (finished_)
        return;
    finished_ = true;
    follower_.finish();

    // A closing frame so short streams still render at least once.
    if (!series_.devices().empty()) {
        std::vector<Alert> alerts;
        if (cfg_.madEnabled) {
            outliers_.evaluate(series_, simTUs_, alerts);
            emitAlerts(alerts);
        }
        emitFrame(simTUs_);
    }

    const FollowStats &st = follower_.stats();
    const ReadTotals totals = series_.rollup();
    util::banner(frames_, "monitor summary");
    util::TextTable tbl;
    tbl.header({"quantity", "value"});
    tbl.row({"lines", util::fmtInt(static_cast<std::int64_t>(st.lines))});
    tbl.row({"health records",
             util::fmtInt(static_cast<std::int64_t>(st.records))});
    tbl.row({"malformed lines",
             util::fmtInt(static_cast<std::int64_t>(st.malformed))});
    tbl.row({"ignored lines",
             util::fmtInt(static_cast<std::int64_t>(st.ignored))});
    tbl.row({"truncated tail",
             util::fmtInt(static_cast<std::int64_t>(st.truncatedTail))});
    tbl.row({"window gaps",
             util::fmtInt(static_cast<std::int64_t>(st.gaps))});
    tbl.row({"missed windows",
             util::fmtInt(static_cast<std::int64_t>(st.missedWindows))});
    tbl.row({"restarts",
             util::fmtInt(static_cast<std::int64_t>(st.restarts))});
    tbl.row({"devices", util::fmtInt(static_cast<std::int64_t>(
                            series_.devices().size()))});
    tbl.row({"windows", util::fmtInt(static_cast<std::int64_t>(
                            totals.windows))});
    tbl.row({"reads", util::fmtInt(static_cast<std::int64_t>(
                          totals.reads.value()))});
    tbl.row({"retries", util::fmtInt(static_cast<std::int64_t>(
                            totals.retries.value()))});
    tbl.row({"sense ops", util::fmtInt(static_cast<std::int64_t>(
                              totals.senses.value()))});
    tbl.row({"assist reads", util::fmtInt(static_cast<std::int64_t>(
                                 totals.assists.value()))});
    tbl.row({"exact deltas", totals.exact ? "yes" : "no"});
    tbl.row({"frames", util::fmtInt(static_cast<std::int64_t>(
                           frames_emitted_))});
    tbl.row({"alerts fired",
             util::fmtInt(static_cast<std::int64_t>(fired_))});
    tbl.row({"worst severity",
             fired_ > 0 ? severityName(worst_) : "none"});
    tbl.print(frames_);
}

std::string
FleetMonitor::reconcile(
    const std::map<std::string, std::uint64_t> &counters) const
{
    return reconcileReadTotals(series_.rollup(), counters);
}

} // namespace flash::mon
