/**
 * @file
 * Incremental tailer over a health JSON-lines stream.
 *
 * A HealthFollower is fed arbitrary byte chunks (a file read loop, a
 * pipe, a test splitting one stream at every possible offset) and
 * re-assembles complete lines across chunk boundaries: a partial
 * line is buffered until its newline arrives, so the parsed record
 * stream — and everything downstream of it — depends only on the
 * stream *content*, never on how the bytes were chunked. Lines that
 * are not valid JSON, including a truncated tail at end of stream,
 * are skipped and counted, never fatal.
 *
 * Records demultiplex by their "device" id (-1 for untagged
 * single-device streams). Schema-2 health records (see
 * ssd/health_monitor.hh) carry a per-device monotone "window" index;
 * the follower checks per-device continuity and counts
 * discontinuities — gaps (index jumped forward: lines lost in
 * transit) and restarts (index went backwards: the emitting process
 * restarted) — instead of silently misaggregating. Unknown fields
 * pass through untouched (forward compatibility with future schema
 * versions).
 */

#ifndef SENTINELFLASH_MON_HEALTH_FOLLOW_HH
#define SENTINELFLASH_MON_HEALTH_FOLLOW_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>

#include "util/json.hh"

namespace flash::mon
{

/** One well-formed health record handed to the sink. */
struct HealthRecord
{
    std::string kind;    ///< "ssd", "chip", or a future kind
    std::string context; ///< run context ("fleet.<cohort>" in fleets)
    int device = -1;     ///< fleet device id (-1: untagged stream)
    int schema = 1;      ///< "schema" field (1 when absent: pre-PR-9)
    std::int64_t window = -1; ///< per-device record index (-1: absent)
    double tUs = 0.0;         ///< simulated time of the record
    bool finalSnapshot = false; ///< closing snapshot of a run
    util::JsonValue json;       ///< full parsed record
};

/** Stream-integrity counters of one follower. */
struct FollowStats
{
    std::uint64_t lines = 0;     ///< complete non-blank lines seen
    std::uint64_t records = 0;   ///< well-formed health records
    std::uint64_t malformed = 0; ///< invalid JSON / non-object lines
    std::uint64_t ignored = 0;   ///< valid JSON, not a health record
    std::uint64_t truncatedTail = 0; ///< unterminated junk at stream end

    /** Window-continuity discontinuities (schema >= 2 records). */
    std::uint64_t gaps = 0;          ///< window jumped forward
    std::uint64_t missedWindows = 0; ///< total windows skipped in gaps
    std::uint64_t restarts = 0;      ///< window went backwards
    std::uint64_t unwindowed = 0;    ///< records without a window field

    int maxSchema = 0; ///< largest "schema" value seen (0: none yet)
};

/**
 * Incremental health-stream tailer; see the file comment. Not
 * thread-safe: feed from one thread.
 */
class HealthFollower
{
  public:
    using Sink = std::function<void(const HealthRecord &)>;

    /** @param sink Called once per well-formed record, in order. */
    explicit HealthFollower(Sink sink);

    /** Consume one chunk of bytes (any chunking, incl. empty). */
    void feed(std::string_view chunk);

    /**
     * End of stream: a non-empty unterminated tail is parsed as a
     * final line if possible, else counted as truncated + malformed.
     * feed() after finish() is rejected (fatal).
     */
    void finish();

    const FollowStats &stats() const { return stats_; }

    /** Distinct device ids seen so far. */
    std::size_t devicesSeen() const { return lastWindow_.size(); }

  private:
    void consumeLine(const std::string &line);

    Sink sink_;
    std::string partial_;
    /** Last window index per device (kNoWindow until one is seen). */
    std::map<int, std::int64_t> lastWindow_;
    FollowStats stats_;
    bool finished_ = false;

    static constexpr std::int64_t kNoWindow = -1;
};

} // namespace flash::mon

#endif // SENTINELFLASH_MON_HEALTH_FOLLOW_HH
