/**
 * @file
 * Declarative alert rules over per-device window series, plus a
 * MAD-based cohort outlier detector.
 *
 * A rule names a window metric and a condition over an N-window
 * lookback:
 *
 *  - Threshold: the latest value crosses the threshold.
 *  - RateOfChange: value(now) - value(now - lookback) crosses it.
 *  - StuckAt: the value is bit-identical for lookback+1 consecutive
 *    windows while also crossing the threshold (e.g. a refresh queue
 *    pinned at a nonzero depth that the budget never drains).
 *  - BudgetBurn: the sum of the metric over the last lookback
 *    windows crosses it (error-budget burn, e.g. total retries).
 *
 * Alerts fire on the rising edge only and carry hysteresis: once
 * active, a rule deactivates only after clearWindows consecutive
 * windows on the safe side of threshold -/+ (1 - clearRatio) *
 * max(|threshold|, 1) — so a value oscillating at the threshold
 * cannot flap across adjacent windows. Firing and clearing both emit
 * structured Alert records with severity, device/cohort attribution
 * and the triggering window.
 *
 * The OutlierDetector is evaluated at frame boundaries across each
 * cohort's devices: it computes the cohort median and MAD of a
 * metric's latest value and flags devices whose robust z-score
 * (0.6745 * |x - median| / MAD) exceeds k — drift that per-device
 * thresholds cannot see because the whole cohort defines "normal".
 *
 * Everything here is pure integer/double arithmetic over the parsed
 * series — no wall clock, no randomness — so the alert stream is a
 * deterministic function of the health-stream bytes.
 */

#ifndef SENTINELFLASH_MON_RULES_HH
#define SENTINELFLASH_MON_RULES_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "mon/timeseries.hh"

namespace flash::mon
{

enum class Severity { Info = 0, Warn = 1, Critical = 2 };

/** Printable name ("info" / "warn" / "critical"). */
const char *severityName(Severity s);

/** Parse a severity name ("crit" accepted); false on unknown. */
bool parseSeverity(const std::string &name, Severity &out);

enum class RuleKind { Threshold, RateOfChange, StuckAt, BudgetBurn };

/** Printable name ("threshold" / "rate_of_change" / ...). */
const char *ruleKindName(RuleKind k);

/** Which side of the threshold breaches. */
enum class Direction { Above, Below };

/** One declarative alert rule; see the file comment. */
struct AlertRule
{
    std::string name;
    std::string metric; ///< see metricValue() for the supported keys
    RuleKind kind = RuleKind::Threshold;
    Direction direction = Direction::Above;
    double threshold = 0.0;
    int lookback = 1; ///< windows (RateOfChange/StuckAt/BudgetBurn)
    Severity severity = Severity::Warn;

    /** Hysteresis: clear band fraction + required clear streak. */
    double clearRatio = 0.8;
    int clearWindows = 2;

    void validate() const;
};

/** One structured alert event. */
struct Alert
{
    std::string rule;
    RuleKind kind = RuleKind::Threshold;
    Severity severity = Severity::Warn;
    std::string event; ///< "fire" or "clear"
    int device = -1;
    std::string cohort;
    std::int64_t window = -1; ///< triggering window index
    double tUs = 0.0;
    double value = 0.0; ///< metric/condition value at the edge
    double threshold = 0.0;
};

/** Serialize one alert as a JSON-lines record (no trailing \n). */
void writeAlertJson(std::ostream &os, const Alert &alert);

/**
 * Value of a rule metric in one window sample; false when the sample
 * does not carry the metric (rule does not evaluate). Supported:
 * "reads", "retries", "retries_per_read", "sense_ops_per_read",
 * "assist_reads_per_read", "read_p99_us", "warm_fraction",
 * "refresh_queue", "warm_read_rate", "model_confidence",
 * "model_confident_fraction".
 */
bool metricValue(const WindowSample &s, const std::string &metric,
                 double &out);

/** Stateful per-(rule, device) evaluator; see the file comment. */
class RuleEngine
{
  public:
    explicit RuleEngine(std::vector<AlertRule> rules);

    /**
     * Evaluate every rule against @p dev's newest window; appends
     * fire/clear events to @p out.
     */
    void onSample(const DeviceSeries &dev, std::vector<Alert> &out);

    const std::vector<AlertRule> &rules() const { return rules_; }

    /** Currently active (fired, not yet cleared) alerts. */
    std::vector<Alert> active() const;

    /** Fire events emitted so far. */
    std::uint64_t fired() const { return fired_; }

    /** Worst severity ever fired (Info when none). */
    Severity worstFired() const { return worst_; }
    bool anyFired() const { return fired_ > 0; }

    void noteFired(Severity s); ///< fold an external fire (outliers)

  private:
    struct State
    {
        bool active = false;
        int clearStreak = 0;
        Alert last; ///< the alert that fired (for active())
    };

    std::vector<AlertRule> rules_;
    std::map<std::pair<int, int>, State> state_; ///< (rule, device)
    std::uint64_t fired_ = 0;
    Severity worst_ = Severity::Info;
};

/** Cohort-baseline outlier detection knobs. */
struct MadConfig
{
    std::string metric = "retries_per_read";
    double k = 5.0;        ///< robust z-score threshold
    double minAbs = 0.25;  ///< minimum absolute deviation from median
    int minDevices = 4;    ///< cohorts smaller than this are skipped
    Severity severity = Severity::Warn;
    int clearWindows = 2; ///< frames below k before a device clears
};

/** MAD-based cohort outlier detector; see the file comment. */
class OutlierDetector
{
  public:
    explicit OutlierDetector(MadConfig cfg);

    /**
     * Evaluate every cohort's devices at a frame boundary; appends
     * fire/clear events (rule "cohort_outlier") to @p out.
     */
    void evaluate(const FleetSeries &fleet, double tUs,
                  std::vector<Alert> &out);

    const MadConfig &config() const { return cfg_; }

  private:
    MadConfig cfg_;
    struct State
    {
        bool active = false;
        int clearStreak = 0;
    };
    std::map<int, State> state_; ///< per device
};

} // namespace flash::mon

#endif // SENTINELFLASH_MON_RULES_HH
