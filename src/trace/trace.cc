#include "trace/trace.hh"

namespace flash::trace
{

TraceStats
analyzeTrace(const std::vector<TraceRecord> &trace)
{
    TraceStats s;
    s.requests = trace.size();
    double size_sum = 0.0;
    for (const auto &r : trace) {
        s.reads += r.isRead;
        size_sum += r.sizeBytes;
    }
    if (!trace.empty()) {
        s.readRatio = static_cast<double>(s.reads)
            / static_cast<double>(s.requests);
        s.meanSizeKb = size_sum / static_cast<double>(s.requests) / 1024.0;
        s.durationUs =
            trace.back().timestampUs - trace.front().timestampUs;
    }
    return s;
}

} // namespace flash::trace
