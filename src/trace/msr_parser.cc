#include "trace/msr_parser.hh"

#include <array>
#include <charconv>
#include <istream>
#include <string>

namespace flash::trace
{

namespace
{

/** Split @p line into exactly @p N comma-separated fields. */
template <std::size_t N>
bool
splitFields(std::string_view line, std::array<std::string_view, N> &out)
{
    std::size_t field = 0;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= line.size(); ++i) {
        if (i == line.size() || line[i] == ',') {
            if (field >= N)
                return false;
            out[field++] = line.substr(start, i - start);
            start = i + 1;
        }
    }
    return field == N;
}

/** Strict unsigned decimal parse of a whole field. */
bool
parseU64(std::string_view s, std::uint64_t &out)
{
    if (s.empty())
        return false;
    const auto res = std::from_chars(s.data(), s.data() + s.size(), out);
    return res.ec == std::errc() && res.ptr == s.data() + s.size();
}

bool
equalsIgnoreCase(std::string_view s, std::string_view lower)
{
    if (s.size() != lower.size())
        return false;
    for (std::size_t i = 0; i < s.size(); ++i) {
        const char c = s[i];
        const char l =
            (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
        if (l != lower[i])
            return false;
    }
    return true;
}

} // namespace

std::optional<TraceRecord>
parseMsrLine(std::string_view line, const MsrParseOptions &options,
             MsrParseStats *stats)
{
    MsrParseStats scratch;
    MsrParseStats &st = stats ? *stats : scratch;
    ++st.lines;

    // Tolerate trailing CR of CRLF traces.
    if (!line.empty() && line.back() == '\r')
        line.remove_suffix(1);

    std::array<std::string_view, 7> f;
    if (!splitFields(line, f)) {
        ++st.malformed;
        return std::nullopt;
    }

    std::uint64_t ticks = 0, disk = 0, offset = 0, size = 0, resp = 0;
    if (!parseU64(f[0], ticks) || !parseU64(f[2], disk)
        || !parseU64(f[4], offset) || !parseU64(f[5], size)
        || !parseU64(f[6], resp)) {
        ++st.malformed;
        return std::nullopt;
    }

    bool is_read;
    if (equalsIgnoreCase(f[3], "read")) {
        is_read = true;
    } else if (equalsIgnoreCase(f[3], "write")) {
        is_read = false;
    } else {
        ++st.malformed;
        return std::nullopt;
    }

    if (size == 0) {
        ++st.zeroSized;
        return std::nullopt;
    }
    if (size > options.maxSizeBytes) {
        size = options.maxSizeBytes;
        ++st.clamped;
    }
    if (options.maxOffsetBytes != 0 && offset >= options.maxOffsetBytes) {
        offset %= options.maxOffsetBytes;
        ++st.clamped;
    }

    TraceRecord rec;
    rec.timestampUs =
        static_cast<double>(ticks) / 10.0; // 100 ns ticks -> us
    rec.offsetBytes = offset;
    rec.sizeBytes = static_cast<std::uint32_t>(size);
    rec.isRead = is_read;
    ++st.parsed;
    return rec;
}

std::vector<TraceRecord>
parseMsrTrace(std::istream &in, const MsrParseOptions &options,
              MsrParseStats *stats)
{
    MsrParseStats scratch;
    MsrParseStats &st = stats ? *stats : scratch;

    std::vector<TraceRecord> out;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        if (auto rec = parseMsrLine(line, options, &st))
            out.push_back(*rec);
    }
    if (!out.empty()) {
        const double epoch = out.front().timestampUs;
        for (auto &rec : out)
            rec.timestampUs -= epoch;
    }
    return out;
}

} // namespace flash::trace
