/**
 * @file
 * Block-level I/O trace records (MSR Cambridge style).
 */

#ifndef SENTINELFLASH_TRACE_TRACE_HH
#define SENTINELFLASH_TRACE_TRACE_HH

#include <cstdint>
#include <vector>

namespace flash::trace
{

/** One block-level I/O request. */
struct TraceRecord
{
    double timestampUs = 0.0;  ///< arrival time
    std::uint64_t offsetBytes = 0;
    std::uint32_t sizeBytes = 0;
    bool isRead = true;
};

/** Simple whole-trace statistics. */
struct TraceStats
{
    std::size_t requests = 0;
    std::size_t reads = 0;
    double readRatio = 0.0;
    double meanSizeKb = 0.0;
    double durationUs = 0.0;
};

/** Compute summary statistics of a trace. */
TraceStats analyzeTrace(const std::vector<TraceRecord> &trace);

} // namespace flash::trace

#endif // SENTINELFLASH_TRACE_TRACE_HH
