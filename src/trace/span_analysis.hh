/**
 * @file
 * Span-trace analysis: rebuild span trees from a `--trace-spans` file,
 * verify their structural invariants, and attribute latency.
 *
 * Consumed by tools/trace_analyze and the span-invariant tests. The
 * pipeline is parseSpanTrace() (JSON lines -> SpanForest with parent
 * links resolved and orphans recorded) followed by analyzeSpans()
 * (invariant checks, per-root-class latency totals and percentiles,
 * critical-path attribution, tail attribution and retry-storm
 * detection). writePerfettoJson() exports the forest in the Chrome /
 * Perfetto traceEvents format.
 *
 * Latency attribution walks each root's critical chain: children
 * sorted by start time, overlapping siblings resolved to the one
 * finishing later (the chain member the parent actually waited for),
 * gaps between chain members charged to the parent's own class, and
 * the walk recursing into every chain member. Summing the resulting
 * self-times over all roots of a class reproduces that class's total
 * latency; restricting the sum to roots at or beyond their class's
 * p99 attributes the tail.
 */

#ifndef SENTINELFLASH_TRACE_SPAN_ANALYSIS_HH
#define SENTINELFLASH_TRACE_SPAN_ANALYSIS_HH

#include <cstdint>
#include <istream>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace flash::trace
{

/** One span parsed back from a trace file. */
struct SpanNode
{
    std::uint64_t id = 0;
    std::uint64_t parent = 0; ///< 0 = root
    std::string cls;
    double startUs = 0.0;
    double durUs = 0.0;
    std::map<std::string, double> nums;
    std::map<std::string, std::string> strs;

    int parentIndex = -1;      ///< node index; -1 = root or orphan
    std::vector<int> children; ///< node indices, file order

    double endUs() const { return startUs + durUs; }

    /** Numeric attribute (fallback when absent). */
    double num(const std::string &key, double fallback = 0.0) const;
};

/** All spans of one trace file, parent links resolved. */
struct SpanForest
{
    std::vector<SpanNode> nodes; ///< file order
    std::vector<int> roots;      ///< node indices, file order
    std::vector<std::uint64_t> orphans; ///< ids with unknown parents
    std::uint64_t duplicates = 0;       ///< ids seen more than once

    bool haveSummary = false; ///< span_summary line present
    std::uint64_t declaredSpans = 0;
    std::uint64_t declaredDropped = 0;
};

/**
 * Parse a JSON-lines span trace (see util::span_trace). Lines that
 * are valid JSON but neither a span nor the summary are ignored, so a
 * file interleaving other JSON-lines records still parses. Throws
 * util::FatalError on malformed JSON.
 */
SpanForest parseSpanTrace(std::istream &is);

/** Knobs of analyzeSpans(). */
struct SpanAnalysisOptions
{
    /** A root with at least this many retries is a retry storm. */
    int retryStormK = 5;

    /**
     * Relative tolerance of the interval invariants. Child spans are
     * timed term-by-term while parents carry the canonical closed
     * form, so sums agree only to rounding.
     */
    double eps = 1e-9;

    /** Violation messages kept verbatim (the rest only counted). */
    int maxViolations = 20;
};

/** One detected retry storm. */
struct RetryStorm
{
    std::uint64_t rootId = 0;
    int retries = 0;
};

/** Results of analyzeSpans(). */
struct TraceAnalysis
{
    std::uint64_t spanCount = 0;
    std::uint64_t rootCount = 0;
    std::uint64_t orphanCount = 0;
    std::uint64_t duplicateCount = 0;

    /** Whether the summary line matched the spans actually present. */
    bool summaryMatches = true;
    std::uint64_t droppedSpans = 0;

    /** First maxViolations invariant violations, human-readable. */
    std::vector<std::string> violations;
    std::uint64_t violationCount = 0;

    /**
     * Per root class: exact sum of root durations (util::ExactSum,
     * order-invariant). For core evaluator traces this reproduces the
     * metrics' latency-histogram sums bit-exactly (same multiset of
     * values, same exact accumulation).
     */
    std::map<std::string, double> rootTotalUs;

    /** Per root class: count/p50/p99/p999/max of root durations. */
    std::map<std::string, std::map<std::string, double>> rootStats;

    /** Critical-path self-time by span class, all roots. */
    std::map<std::string, double> criticalPathUs;

    /** Critical-path self-time by span class, roots >= their p99. */
    std::map<std::string, double> tailCriticalPathUs;

    /** Span class dominating the tail critical path. */
    std::string tailDominantClass;

    std::vector<RetryStorm> retryStorms;
};

/** Analyze a parsed forest; see the file comment. */
TraceAnalysis analyzeSpans(const SpanForest &forest,
                           const SpanAnalysisOptions &options = {});

/**
 * Export the forest as one Chrome/Perfetto traceEvents JSON document
 * (complete "X" events on the microsecond scale). Each root tree is
 * assigned a track ("tid") by greedy interval partitioning, so
 * overlapping requests land on separate tracks; load the file at
 * ui.perfetto.dev or chrome://tracing.
 */
void writePerfettoJson(const SpanForest &forest, std::ostream &os);

/** Serialize an analysis as one JSON object. */
void writeAnalysisJson(const TraceAnalysis &analysis, std::ostream &os);

} // namespace flash::trace

#endif // SENTINELFLASH_TRACE_SPAN_ANALYSIS_HH
