#include "trace/msr_workloads.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/rng.hh"

namespace flash::trace
{

std::vector<WorkloadSpec>
msrWorkloads()
{
    // Parameters follow the published characteristics of the MSR
    // Cambridge volumes: read ratio and intensity from Narayanan et
    // al. (EuroSys'09); sizes/sequentiality are representative.
    //   name     read   kb    seq   ws(MB)  inter(us) hot%  hotAcc
    return {
        {"hm_0",    0.35, 8.0,  0.20, 4096.0, 600.0, 0.15, 0.85},
        {"mds_0",   0.12, 12.0, 0.35, 8192.0, 900.0, 0.20, 0.80},
        {"prn_0",   0.11, 16.0, 0.30, 16384.0, 700.0, 0.25, 0.75},
        {"proj_0",  0.12, 24.0, 0.45, 16384.0, 500.0, 0.20, 0.80},
        {"rsrch_0", 0.09, 8.0,  0.15, 2048.0, 1100.0, 0.15, 0.85},
        {"src1_2",  0.25, 32.0, 0.50, 8192.0, 400.0, 0.20, 0.80},
        {"stg_0",   0.15, 12.0, 0.30, 8192.0, 800.0, 0.20, 0.80},
        {"usr_0",   0.60, 16.0, 0.25, 16384.0, 450.0, 0.25, 0.85},
    };
}

WorkloadSpec
msrWorkload(const std::string &name)
{
    for (const auto &w : msrWorkloads()) {
        if (w.name == name)
            return w;
    }
    util::fatal("unknown MSR-like workload: " + name);
}

std::vector<TraceRecord>
generateTrace(const WorkloadSpec &spec, std::size_t requests,
              std::uint64_t seed)
{
    util::fatalIf(spec.readRatio < 0.0 || spec.readRatio > 1.0,
                  "generateTrace: bad read ratio");
    util::Rng rng(seed ^ util::mix64(0x7472616365ULL));

    constexpr std::uint64_t kAlign = 4096;
    const std::uint64_t footprint =
        static_cast<std::uint64_t>(spec.workingSetMb * 1024.0 * 1024.0)
        / kAlign * kAlign;
    const std::uint64_t hot_bytes = static_cast<std::uint64_t>(
        static_cast<double>(footprint) * spec.hotDataFrac)
        / kAlign * kAlign;

    std::vector<TraceRecord> out;
    out.reserve(requests);

    double now_us = 0.0;
    std::uint64_t run_offset = 0;
    bool run_read = true;
    for (std::size_t i = 0; i < requests; ++i) {
        now_us += rng.exponential(spec.meanInterarrivalUs);

        // Request size: lognormal-ish around the mean, aligned.
        const double kb =
            spec.meanReqKb * std::exp(rng.gaussian() * 0.6 - 0.18);
        std::uint32_t size = static_cast<std::uint32_t>(
            std::max(1.0, std::round(kb * 1024.0 / kAlign)) * kAlign);

        TraceRecord r;
        r.timestampUs = now_us;
        r.sizeBytes = size;
        if (i > 0 && rng.bernoulli(spec.seqProb)) {
            // Continue the current sequential run.
            r.isRead = run_read;
            r.offsetBytes = run_offset;
        } else {
            r.isRead = rng.bernoulli(spec.readRatio);
            const bool hot = rng.bernoulli(spec.hotAccessFrac);
            const std::uint64_t region =
                hot ? hot_bytes : footprint - hot_bytes;
            const std::uint64_t base = hot ? 0 : hot_bytes;
            std::uint64_t off =
                base + rng.uniformInt(std::max<std::uint64_t>(
                           1, region / kAlign)) * kAlign;
            if (off + size > footprint)
                off = footprint > size ? footprint - size : 0;
            r.offsetBytes = off;
            run_read = r.isRead;
        }
        run_offset = r.offsetBytes + r.sizeBytes;
        if (run_offset + size > footprint)
            run_offset = 0;
        out.push_back(r);
    }
    return out;
}

} // namespace flash::trace
