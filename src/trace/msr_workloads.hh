/**
 * @file
 * Synthetic MSR-Cambridge-like workload generator.
 *
 * The paper replays eight MSR Cambridge server traces through SSDSim
 * (Fig 14). The raw traces are not redistributable here, so this
 * generator synthesizes traces whose first-order statistics —
 * read/write mix, request sizes, sequentiality, working-set size and
 * arrival intensity — follow the published characteristics of the
 * corresponding servers. The latency-reduction experiment depends on
 * exactly these properties (how many reads, how hot the queues are),
 * which the synthesis preserves.
 */

#ifndef SENTINELFLASH_TRACE_MSR_WORKLOADS_HH
#define SENTINELFLASH_TRACE_MSR_WORKLOADS_HH

#include <string>
#include <vector>

#include "trace/trace.hh"

namespace flash::trace
{

/** First-order workload parameters. */
struct WorkloadSpec
{
    std::string name;
    double readRatio = 0.5;        ///< fraction of read requests
    double meanReqKb = 16.0;       ///< mean request size
    double seqProb = 0.3;          ///< P(next request continues a run)
    double workingSetMb = 2048.0;  ///< footprint of the address space
    double meanInterarrivalUs = 500.0;
    double hotDataFrac = 0.2;      ///< fraction of footprint that is hot
    double hotAccessFrac = 0.8;    ///< fraction of accesses to hot data
};

/**
 * The eight MSR-like server workloads used by the Fig 14 experiment
 * (hm_0, mds_0, prn_0, proj_0, rsrch_0, src1_2, stg_0, usr_0).
 */
std::vector<WorkloadSpec> msrWorkloads();

/** Look up one workload spec by name (fatal if unknown). */
WorkloadSpec msrWorkload(const std::string &name);

/**
 * Generate @p requests records following a spec. Deterministic in the
 * seed.
 */
std::vector<TraceRecord> generateTrace(const WorkloadSpec &spec,
                                       std::size_t requests,
                                       std::uint64_t seed);

} // namespace flash::trace

#endif // SENTINELFLASH_TRACE_MSR_WORKLOADS_HH
