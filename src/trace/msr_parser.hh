/**
 * @file
 * Parser for MSR-Cambridge-format block I/O traces.
 *
 * Line format (CSV, seven fields):
 *   Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
 * where Timestamp is in Windows filetime ticks (100 ns), Type is
 * "Read" or "Write" (case-insensitive), Offset/Size are bytes and
 * ResponseTime is ignored.
 *
 * Real traces are dirty; the parser's contract is to never crash and
 * to handle every edge case deterministically:
 *  - malformed lines (wrong field count, non-numeric fields, unknown
 *    type, negative values) are skipped and counted;
 *  - zero-length requests are rejected and counted (a zero-page op
 *    has no defined latency);
 *  - unaligned offsets/sizes pass through untouched (the simulator
 *    splits them into page operations);
 *  - requests larger than maxSizeBytes are clamped and counted;
 *  - offsets at or beyond maxOffsetBytes wrap modulo the range and
 *    are counted (the simulator's LPN folding made explicit).
 */

#ifndef SENTINELFLASH_TRACE_MSR_PARSER_HH
#define SENTINELFLASH_TRACE_MSR_PARSER_HH

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <string_view>

#include "trace/trace.hh"

namespace flash::trace
{

/** Edge-case policy of the MSR parser. */
struct MsrParseOptions
{
    /** Offsets wrap modulo this when non-zero. */
    std::uint64_t maxOffsetBytes = 0;

    /** Requests larger than this are clamped (64 MiB default). */
    std::uint32_t maxSizeBytes = 64u << 20;
};

/** What the parser did with the input. */
struct MsrParseStats
{
    std::size_t lines = 0;     ///< non-empty, non-comment lines seen
    std::size_t parsed = 0;    ///< records produced
    std::size_t malformed = 0; ///< rejected lines
    std::size_t zeroSized = 0; ///< rejected zero-length requests
    std::size_t clamped = 0;   ///< size-clamped or offset-wrapped
};

/**
 * Parse one MSR line. Returns nullopt for malformed or zero-sized
 * lines (@p stats, when given, says which). Timestamps convert to
 * microseconds; no epoch normalization (see parseMsrTrace).
 */
std::optional<TraceRecord> parseMsrLine(std::string_view line,
                                        const MsrParseOptions &options = {},
                                        MsrParseStats *stats = nullptr);

/**
 * Parse a whole MSR CSV stream, skipping blank lines and '#'
 * comments. Timestamps are rebased so the first parsed record starts
 * at 0 (the simulators treat arrival times as trace-relative).
 */
std::vector<TraceRecord> parseMsrTrace(std::istream &in,
                                       const MsrParseOptions &options = {},
                                       MsrParseStats *stats = nullptr);

} // namespace flash::trace

#endif // SENTINELFLASH_TRACE_MSR_PARSER_HH
