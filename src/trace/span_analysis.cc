#include "trace/span_analysis.hh"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <unordered_map>

#include "util/json.hh"
#include "util/logging.hh"
#include "util/metrics.hh"

namespace flash::trace
{

namespace
{

/** Nearest-rank percentile of a sorted sample (0 when empty). */
double
percentileOf(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const std::size_t n = sorted.size();
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(n)));
    rank = std::min(std::max<std::size_t>(rank, 1), n);
    return sorted[rank - 1];
}

/** Interval tolerance at the scale of one parent span. */
double
toleranceOf(const SpanNode &parent, double eps)
{
    return eps
        * std::max({1.0, std::abs(parent.startUs),
                    std::abs(parent.endUs())});
}

/** Children of @p node sorted by start time (stable on ties). */
std::vector<int>
childrenByStart(const SpanForest &forest, const SpanNode &node)
{
    std::vector<int> order = node.children;
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return forest.nodes[static_cast<std::size_t>(a)].startUs
            < forest.nodes[static_cast<std::size_t>(b)].startUs;
    });
    return order;
}

/**
 * The node's critical chain: children in start order with overlapping
 * siblings resolved to the one finishing later (what the parent
 * actually waited for).
 */
std::vector<int>
criticalChain(const SpanForest &forest, const SpanNode &node, double eps)
{
    const double tol = toleranceOf(node, eps);
    std::vector<int> chain;
    for (int c : childrenByStart(forest, node)) {
        const SpanNode &child = forest.nodes[static_cast<std::size_t>(c)];
        if (chain.empty()) {
            chain.push_back(c);
            continue;
        }
        const SpanNode &last =
            forest.nodes[static_cast<std::size_t>(chain.back())];
        if (child.startUs < last.endUs() - tol) {
            if (child.endUs() > last.endUs())
                chain.back() = c;
        } else {
            chain.push_back(c);
        }
    }
    return chain;
}

/**
 * Attribute the node's interval to span classes along the critical
 * chain: gaps not covered by any chain member are the node's own
 * work, chain members recurse.
 */
void
attributeCriticalPath(const SpanForest &forest, int index,
                      std::map<std::string, double> &self_us, double eps)
{
    const SpanNode &node = forest.nodes[static_cast<std::size_t>(index)];
    if (node.children.empty()) {
        self_us[node.cls] += node.durUs;
        return;
    }
    double t = node.startUs;
    for (int c : criticalChain(forest, node, eps)) {
        const SpanNode &child = forest.nodes[static_cast<std::size_t>(c)];
        if (child.startUs > t)
            self_us[node.cls] += child.startUs - t;
        attributeCriticalPath(forest, c, self_us, eps);
        t = std::max(t, child.endUs());
    }
    if (node.endUs() > t)
        self_us[node.cls] += node.endUs() - t;
}

void
recordViolation(TraceAnalysis &out, const SpanAnalysisOptions &options,
                std::string msg)
{
    ++out.violationCount;
    if (static_cast<int>(out.violations.size()) < options.maxViolations)
        out.violations.push_back(std::move(msg));
}

void
writeStringMap(std::ostream &os, const std::map<std::string, double> &m)
{
    os << '{';
    bool first = true;
    for (const auto &[key, value] : m) {
        os << (first ? "" : ", ") << '"' << util::jsonEscape(key)
           << "\": ";
        util::writeJsonValue(os, value);
        first = false;
    }
    os << '}';
}

} // namespace

double
SpanNode::num(const std::string &key, double fallback) const
{
    const auto it = nums.find(key);
    return it == nums.end() ? fallback : it->second;
}

SpanForest
parseSpanTrace(std::istream &is)
{
    SpanForest forest;
    std::unordered_map<std::uint64_t, int> index_of;

    std::string line;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        const util::JsonValue v = util::parseJson(line);
        if (!v.isObject())
            continue;
        if (const util::JsonValue *s = v.find("span_summary");
            s && s->isNumber()) {
            forest.haveSummary = true;
            if (const util::JsonValue *n = v.find("spans"))
                forest.declaredSpans =
                    static_cast<std::uint64_t>(n->number);
            if (const util::JsonValue *n = v.find("dropped_spans"))
                forest.declaredDropped =
                    static_cast<std::uint64_t>(n->number);
            continue;
        }
        const util::JsonValue *cls = v.find("span");
        const util::JsonValue *id = v.find("id");
        const util::JsonValue *parent = v.find("parent");
        if (!cls || cls->type != util::JsonValue::Type::String || !id
            || !id->isNumber() || !parent || !parent->isNumber()) {
            continue; // not a span record (e.g. interleaved health line)
        }

        SpanNode node;
        node.id = static_cast<std::uint64_t>(id->number);
        node.parent = static_cast<std::uint64_t>(parent->number);
        node.cls = cls->string;
        for (const auto &[key, value] : v.object) {
            if (key == "span" || key == "id" || key == "parent")
                continue;
            if (key == "start_us" && value.isNumber()) {
                node.startUs = value.number;
            } else if (key == "dur_us" && value.isNumber()) {
                node.durUs = value.number;
            } else if (value.isNumber()) {
                node.nums.emplace(key, value.number);
            } else if (value.type == util::JsonValue::Type::String) {
                node.strs.emplace(key, value.string);
            }
        }

        if (index_of.count(node.id)) {
            ++forest.duplicates;
            continue;
        }
        index_of.emplace(node.id,
                         static_cast<int>(forest.nodes.size()));
        forest.nodes.push_back(std::move(node));
    }

    for (std::size_t i = 0; i < forest.nodes.size(); ++i) {
        SpanNode &node = forest.nodes[i];
        if (node.parent == 0) {
            forest.roots.push_back(static_cast<int>(i));
            continue;
        }
        const auto it = index_of.find(node.parent);
        if (it == index_of.end()) {
            forest.orphans.push_back(node.id);
            continue;
        }
        node.parentIndex = it->second;
        forest.nodes[static_cast<std::size_t>(it->second)]
            .children.push_back(static_cast<int>(i));
    }
    return forest;
}

TraceAnalysis
analyzeSpans(const SpanForest &forest, const SpanAnalysisOptions &options)
{
    TraceAnalysis out;
    out.spanCount = forest.nodes.size();
    out.rootCount = forest.roots.size();
    out.orphanCount = forest.orphans.size();
    out.duplicateCount = forest.duplicates;
    out.droppedSpans = forest.declaredDropped;
    out.summaryMatches = !forest.haveSummary
        || forest.declaredSpans == forest.nodes.size();

    // Structural invariants.
    for (std::size_t i = 0; i < forest.nodes.size(); ++i) {
        const SpanNode &node = forest.nodes[i];
        if (node.durUs < 0.0) {
            recordViolation(out, options,
                            "span " + std::to_string(node.id)
                                + " (" + node.cls
                                + "): negative duration");
        }
        if (node.children.empty())
            continue;
        const double tol = toleranceOf(node, options.eps);
        double child_sum = 0.0;
        bool overlapping = false;
        double prev_end = node.startUs;
        for (int c : childrenByStart(forest, node)) {
            const SpanNode &child =
                forest.nodes[static_cast<std::size_t>(c)];
            if (child.startUs < node.startUs - tol
                || child.endUs() > node.endUs() + tol) {
                recordViolation(
                    out, options,
                    "span " + std::to_string(child.id) + " ("
                        + child.cls + ") escapes parent "
                        + std::to_string(node.id) + " (" + node.cls
                        + ")");
            }
            if (child.startUs < prev_end - tol)
                overlapping = true;
            prev_end = std::max(prev_end, child.endUs());
            child_sum += child.durUs;
        }
        // Sequential children must fit in the parent; parallel ones
        // (page ops fanned out under one host request) legitimately
        // sum past it.
        if (!overlapping && child_sum > node.durUs + tol) {
            recordViolation(out, options,
                            "children of span " + std::to_string(node.id)
                                + " (" + node.cls + ") sum to "
                                + util::jsonNumber(child_sum)
                                + " us > parent "
                                + util::jsonNumber(node.durUs) + " us");
        }
    }

    // Per-root-class latency totals and distributions. Totals use the
    // same exact accumulation as the metrics histograms, so for runs
    // whose roots carry the recorded latencies they agree to the last
    // bit — in any order.
    std::map<std::string, std::vector<double>> root_durs;
    std::map<std::string, util::ExactSum> root_sums;
    for (int r : forest.roots) {
        const SpanNode &root = forest.nodes[static_cast<std::size_t>(r)];
        root_sums[root.cls].add(root.durUs);
        root_durs[root.cls].push_back(root.durUs);
    }
    for (const auto &[cls, sum] : root_sums)
        out.rootTotalUs[cls] = sum.value();
    std::map<std::string, double> tail_threshold;
    for (auto &[cls, durs] : root_durs) {
        std::vector<double> sorted = durs;
        std::sort(sorted.begin(), sorted.end());
        auto &stats = out.rootStats[cls];
        stats["count"] = static_cast<double>(sorted.size());
        stats["p50_us"] = percentileOf(sorted, 0.50);
        stats["p99_us"] = percentileOf(sorted, 0.99);
        stats["p999_us"] = percentileOf(sorted, 0.999);
        stats["max_us"] = sorted.back();
        tail_threshold[cls] = stats["p99_us"];
    }

    // Critical-path attribution, whole population and the tail.
    for (int r : forest.roots) {
        const SpanNode &root = forest.nodes[static_cast<std::size_t>(r)];
        attributeCriticalPath(forest, r, out.criticalPathUs, options.eps);
        if (root.durUs >= tail_threshold[root.cls]) {
            attributeCriticalPath(forest, r, out.tailCriticalPathUs,
                                  options.eps);
        }
    }
    double best = -1.0;
    for (const auto &[cls, us] : out.tailCriticalPathUs) {
        if (us > best) {
            best = us;
            out.tailDominantClass = cls;
        }
    }

    // Retry storms: some read session under the root retried >= K
    // times. A session is any span carrying an "attempts" attribute
    // (SsdSim read_op, chip-level session roots) or explicit
    // "attempt" child spans; the root reports its worst session, so a
    // multi-page request does not pool one-attempt reads into a
    // phantom storm.
    for (int r : forest.roots) {
        const SpanNode &root = forest.nodes[static_cast<std::size_t>(r)];
        int retries = 0;
        const std::function<void(int)> scan = [&](int idx) {
            const SpanNode &node =
                forest.nodes[static_cast<std::size_t>(idx)];
            const int from_attr =
                static_cast<int>(node.num("attempts", 0.0)) - 1;
            int from_spans = 0;
            for (int c : node.children) {
                from_spans +=
                    forest.nodes[static_cast<std::size_t>(c)].cls
                    == "attempt";
            }
            retries = std::max({retries, from_attr, from_spans - 1});
            for (int c : node.children)
                scan(c);
        };
        scan(r);
        if (retries >= options.retryStormK)
            out.retryStorms.push_back(RetryStorm{root.id, retries});
    }
    return out;
}

void
writePerfettoJson(const SpanForest &forest, std::ostream &os)
{
    // Greedy interval partitioning: each root tree goes to the first
    // track free at its start time.
    std::vector<double> track_free;
    std::vector<int> track_of(forest.nodes.size(), 0);
    for (int r : forest.roots) {
        const SpanNode &root = forest.nodes[static_cast<std::size_t>(r)];
        int track = -1;
        for (std::size_t t = 0; t < track_free.size(); ++t) {
            if (track_free[t] <= root.startUs) {
                track = static_cast<int>(t);
                break;
            }
        }
        if (track < 0) {
            track = static_cast<int>(track_free.size());
            track_free.push_back(0.0);
        }
        track_free[static_cast<std::size_t>(track)] = root.endUs();
        track_of[static_cast<std::size_t>(r)] = track;
    }

    os << "{\"traceEvents\": [";
    bool first = true;
    // Emit each tree depth-first so events of one request stay
    // adjacent in the file.
    const std::function<void(int, const std::string &, int)> emit =
        [&](int index, const std::string &cat, int track) {
            const SpanNode &node =
                forest.nodes[static_cast<std::size_t>(index)];
            os << (first ? "" : ", ")
               << "{\"name\": \"" << util::jsonEscape(node.cls)
               << "\", \"cat\": \"" << util::jsonEscape(cat)
               << "\", \"ph\": \"X\", \"ts\": ";
            util::writeJsonValue(os, node.startUs);
            os << ", \"dur\": ";
            util::writeJsonValue(os, node.durUs);
            os << ", \"pid\": 0, \"tid\": " << track << ", \"args\": {";
            bool first_arg = true;
            for (const auto &[key, value] : node.strs) {
                os << (first_arg ? "" : ", ") << '"'
                   << util::jsonEscape(key) << "\": \""
                   << util::jsonEscape(value) << '"';
                first_arg = false;
            }
            for (const auto &[key, value] : node.nums) {
                os << (first_arg ? "" : ", ") << '"'
                   << util::jsonEscape(key) << "\": ";
                util::writeJsonValue(os, value);
                first_arg = false;
            }
            os << "}}";
            first = false;
            for (int c : node.children)
                emit(c, cat, track);
        };
    for (int r : forest.roots) {
        emit(r, forest.nodes[static_cast<std::size_t>(r)].cls,
             track_of[static_cast<std::size_t>(r)]);
    }
    os << "]}\n";
}

void
writeAnalysisJson(const TraceAnalysis &analysis, std::ostream &os)
{
    os << "{\"spans\": " << analysis.spanCount
       << ", \"roots\": " << analysis.rootCount
       << ", \"orphans\": " << analysis.orphanCount
       << ", \"duplicates\": " << analysis.duplicateCount
       << ", \"dropped_spans\": " << analysis.droppedSpans
       << ", \"summary_matches\": "
       << (analysis.summaryMatches ? "true" : "false")
       << ", \"violation_count\": " << analysis.violationCount
       << ", \"violations\": [";
    for (std::size_t i = 0; i < analysis.violations.size(); ++i) {
        os << (i ? ", " : "") << '"'
           << util::jsonEscape(analysis.violations[i]) << '"';
    }
    os << "], \"root_total_us\": ";
    writeStringMap(os, analysis.rootTotalUs);
    os << ", \"root_stats\": {";
    bool first = true;
    for (const auto &[cls, stats] : analysis.rootStats) {
        os << (first ? "" : ", ") << '"' << util::jsonEscape(cls)
           << "\": ";
        writeStringMap(os, stats);
        first = false;
    }
    os << "}, \"critical_path_us\": ";
    writeStringMap(os, analysis.criticalPathUs);
    os << ", \"tail_critical_path_us\": ";
    writeStringMap(os, analysis.tailCriticalPathUs);
    os << ", \"tail_dominant_class\": \""
       << util::jsonEscape(analysis.tailDominantClass)
       << "\", \"retry_storms\": [";
    for (std::size_t i = 0; i < analysis.retryStorms.size(); ++i) {
        os << (i ? ", " : "")
           << "{\"root_id\": " << analysis.retryStorms[i].rootId
           << ", \"retries\": " << analysis.retryStorms[i].retries << '}';
    }
    os << "]}\n";
}

} // namespace flash::trace
