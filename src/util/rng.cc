#include "util/rng.hh"

#include <cmath>

namespace flash::util
{

std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::uint64_t
hashCombine(std::uint64_t a, std::uint64_t b)
{
    return mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

std::uint64_t
hashWords(std::initializer_list<std::uint64_t> words)
{
    std::uint64_t h = 0x243f6a8885a308d3ULL; // pi fractional bits
    for (std::uint64_t w : words)
        h = hashCombine(h, w);
    return h;
}

double
toUnitUniform(std::uint64_t h)
{
    // Use the top 53 bits for a dense double in [0, 1).
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double
toGaussian(std::uint64_t h)
{
    // Keep u strictly inside (0, 1) so the inverse CDF stays finite.
    double u = toUnitUniform(h);
    constexpr double eps = 1e-12;
    if (u < eps)
        u = eps;
    if (u > 1.0 - eps)
        u = 1.0 - eps;

    // Acklam's rational approximation to the inverse normal CDF.
    static constexpr double a[] = {
        -3.969683028665376e+01, 2.209460984245205e+02,
        -2.759285104469687e+02, 1.383577518672690e+02,
        -3.066479806614716e+01, 2.506628277459239e+00};
    static constexpr double b[] = {
        -5.447609879822406e+01, 1.615858368580409e+02,
        -1.556989798598866e+02, 6.680131188771972e+01,
        -1.328068155288572e+01};
    static constexpr double c[] = {
        -7.784894002430293e-03, -3.223964580411365e-01,
        -2.400758277161838e+00, -2.549732539343734e+00,
        4.374664141464968e+00, 2.938163982698783e+00};
    static constexpr double d[] = {
        7.784695709041462e-03, 3.224671290700398e-01,
        2.445134137142996e+00, 3.754408661907416e+00};

    constexpr double plow = 0.02425;
    constexpr double phigh = 1.0 - plow;

    if (u < plow) {
        const double q = std::sqrt(-2.0 * std::log(u));
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
                + c[5])
            / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    if (u > phigh) {
        const double q = std::sqrt(-2.0 * std::log(1.0 - u));
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
                 + c[5])
            / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    const double q = u - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r
            + a[5])
        * q
        / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

double
Rng::exponential(double mean)
{
    double u = uniform();
    if (u >= 1.0)
        u = 1.0 - 1e-12;
    return -mean * std::log1p(-u);
}

std::uint64_t
Rng::poisson(double lambda)
{
    if (lambda <= 0.0)
        return 0;
    if (lambda < 30.0) {
        // Knuth inversion.
        const double limit = std::exp(-lambda);
        double p = 1.0;
        std::uint64_t k = 0;
        do {
            ++k;
            p *= uniform();
        } while (p > limit);
        return k - 1;
    }
    // Normal approximation with continuity correction.
    const double x = gaussian(lambda, std::sqrt(lambda));
    return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
}

} // namespace flash::util
