#include "util/exact_sum.hh"

#include <cmath>

namespace flash::util
{

void
ExactSum::addAt(int limb, std::uint64_t v)
{
    while (v != 0 && limb < kLimbs) {
        const std::uint64_t old = limbs_[static_cast<std::size_t>(limb)];
        limbs_[static_cast<std::size_t>(limb)] = old + v;
        v = limbs_[static_cast<std::size_t>(limb)] < old ? 1 : 0;
        ++limb;
    }
}

void
ExactSum::add(double v)
{
    if (!(v > 0.0) || !std::isfinite(v))
        return;
    int e = 0;
    const double frac = std::frexp(v, &e); // v = frac * 2^e, frac in [0.5,1)
    // The mantissa as a 53-bit integer: exact for normals and
    // subnormals alike (a subnormal's frac carries <= 52 significant
    // bits, so scaling by 2^53 stays integral).
    const auto m = static_cast<std::uint64_t>(std::ldexp(frac, 53));
    const int pos = e - 53 + kBiasBits; // bit position of m's LSB
    const int limb = pos >> 6;
    const int shift = pos & 63;
    const unsigned __int128 wide = static_cast<unsigned __int128>(m)
        << shift; // <= 116 bits
    addAt(limb, static_cast<std::uint64_t>(wide));
    addAt(limb + 1, static_cast<std::uint64_t>(wide >> 64));
}

void
ExactSum::merge(const ExactSum &other)
{
    for (int k = kLimbs - 1; k >= 0; --k)
        addAt(k, other.limbs_[static_cast<std::size_t>(k)]);
}

bool
ExactSum::zero() const
{
    for (const std::uint64_t limb : limbs_) {
        if (limb != 0)
            return false;
    }
    return true;
}

double
ExactSum::value() const
{
    int top = kLimbs - 1;
    while (top >= 0 && limbs_[static_cast<std::size_t>(top)] == 0)
        --top;
    if (top < 0)
        return 0.0;

    const std::uint64_t hi = limbs_[static_cast<std::size_t>(top)];
    const std::uint64_t lo =
        top > 0 ? limbs_[static_cast<std::size_t>(top - 1)] : 0;
    unsigned __int128 x =
        (static_cast<unsigned __int128>(hi) << 64) | lo;
    for (int k = 0; k < top - 1; ++k) {
        if (limbs_[static_cast<std::size_t>(k)] != 0) {
            x |= 1; // sticky: the tail below the 128-bit window
            break;
        }
    }
    // Round the 128-bit window once (int -> double is round-to-
    // nearest), then scale by an exact power of two.
    return std::ldexp(static_cast<double>(x),
                      64 * (top - 1) - kBiasBits);
}

void
SignedExactSum::add(double v)
{
    if (!std::isfinite(v))
        return;
    if (v > 0.0)
        pos_.add(v);
    else
        neg_.add(-v);
}

void
SignedExactSum::merge(const SignedExactSum &other)
{
    pos_.merge(other.pos_);
    neg_.merge(other.neg_);
}

double
SignedExactSum::value() const
{
    return pos_.value() - neg_.value();
}

bool
SignedExactSum::zero() const
{
    return pos_.zero() && neg_.zero();
}

} // namespace flash::util
