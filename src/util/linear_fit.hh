/**
 * @file
 * Ordinary least-squares line fitting.
 *
 * The cross-voltage correlation model (paper Fig 8) is a per-voltage
 * linear map from the optimal sentinel-voltage offset to every other
 * optimal read-voltage offset.
 */

#ifndef SENTINELFLASH_UTIL_LINEAR_FIT_HH
#define SENTINELFLASH_UTIL_LINEAR_FIT_HH

#include <vector>

namespace flash::util
{

/** Result of an OLS fit y = slope * x + intercept. */
struct LinearFit
{
    double slope = 0.0;
    double intercept = 0.0;
    /** Coefficient of determination of the fit. */
    double r2 = 0.0;
    /** Number of samples used. */
    std::size_t n = 0;

    /** Predict y for a given x. */
    double operator()(double x) const { return slope * x + intercept; }
};

/**
 * Fit y = slope * x + intercept by ordinary least squares.
 * Requires at least two samples with non-degenerate x.
 */
LinearFit linearFit(const std::vector<double> &x,
                    const std::vector<double> &y);

} // namespace flash::util

#endif // SENTINELFLASH_UTIL_LINEAR_FIT_HH
