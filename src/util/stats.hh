/**
 * @file
 * Streaming and batch statistics helpers used across experiments.
 */

#ifndef SENTINELFLASH_UTIL_STATS_HH
#define SENTINELFLASH_UTIL_STATS_HH

#include <cstddef>
#include <limits>
#include <vector>

namespace flash::util
{

/**
 * Numerically stable streaming accumulator (Welford) for mean,
 * variance, min and max.
 */
class RunningStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Merge another accumulator into this one. */
    void merge(const RunningStats &other);

    /** Number of observations so far. */
    std::size_t count() const { return n_; }

    /** Arithmetic mean (0 when empty). */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Unbiased sample variance (0 for fewer than two samples). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Smallest observation (+inf when empty). */
    double min() const { return min_; }

    /** Largest observation (-inf when empty). */
    double max() const { return max_; }

    /** Sum of all observations. */
    double sum() const { return mean_ * static_cast<double>(n_); }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Percentile of a sample by linear interpolation between order
 * statistics. @param q in [0, 1]. The input is copied and sorted.
 */
double percentile(std::vector<double> values, double q);

/** Arithmetic mean of a sample (0 when empty). */
double mean(const std::vector<double> &values);

/** Sample standard deviation of a sample (0 for n < 2). */
double stddev(const std::vector<double> &values);

/** Pearson correlation coefficient of two equal-length samples. */
double pearson(const std::vector<double> &x, const std::vector<double> &y);

} // namespace flash::util

#endif // SENTINELFLASH_UTIL_STATS_HH
