#include "util/polyfit.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace flash::util
{

double
Polynomial::operator()(double x) const
{
    if (coeffs_.empty())
        return 0.0;
    const double xs = (x - xShift_) * xScale_;
    double acc = 0.0;
    for (std::size_t i = coeffs_.size(); i-- > 0;)
        acc = acc * xs + coeffs_[i];
    return acc;
}

namespace
{

/**
 * Solve the dense linear system a * x = b in place with partial
 * pivoting. Sizes are tiny (degree+1), so O(n^3) is irrelevant.
 */
std::vector<double>
solveLinear(std::vector<std::vector<double>> a, std::vector<double> b)
{
    const std::size_t n = b.size();
    for (std::size_t col = 0; col < n; ++col) {
        std::size_t pivot = col;
        for (std::size_t row = col + 1; row < n; ++row) {
            if (std::fabs(a[row][col]) > std::fabs(a[pivot][col]))
                pivot = row;
        }
        fatalIf(std::fabs(a[pivot][col]) < 1e-12,
                "polyfit: singular normal equations (degenerate inputs)");
        std::swap(a[col], a[pivot]);
        std::swap(b[col], b[pivot]);
        for (std::size_t row = col + 1; row < n; ++row) {
            const double f = a[row][col] / a[col][col];
            for (std::size_t k = col; k < n; ++k)
                a[row][k] -= f * a[col][k];
            b[row] -= f * b[col];
        }
    }
    std::vector<double> x(n, 0.0);
    for (std::size_t row = n; row-- > 0;) {
        double acc = b[row];
        for (std::size_t k = row + 1; k < n; ++k)
            acc -= a[row][k] * x[k];
        x[row] = acc / a[row][row];
    }
    return x;
}

} // namespace

Polynomial
polyfit(const std::vector<double> &x, const std::vector<double> &y,
        std::size_t degree)
{
    fatalIf(x.size() != y.size(), "polyfit: size mismatch");
    fatalIf(x.size() < degree + 1, "polyfit: not enough samples");

    // Normalize x into roughly [-1, 1] for conditioning.
    const auto [min_it, max_it] = std::minmax_element(x.begin(), x.end());
    const double shift = 0.5 * (*min_it + *max_it);
    const double half = 0.5 * (*max_it - *min_it);
    const double scale = half > 1e-12 ? 1.0 / half : 1.0;

    const std::size_t n = degree + 1;
    std::vector<std::vector<double>> ata(n, std::vector<double>(n, 0.0));
    std::vector<double> atb(n, 0.0);

    std::vector<double> powers(2 * degree + 1);
    for (std::size_t s = 0; s < x.size(); ++s) {
        const double xs = (x[s] - shift) * scale;
        powers[0] = 1.0;
        for (std::size_t p = 1; p < powers.size(); ++p)
            powers[p] = powers[p - 1] * xs;
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < n; ++j)
                ata[i][j] += powers[i + j];
            atb[i] += powers[i] * y[s];
        }
    }

    return Polynomial(solveLinear(std::move(ata), std::move(atb)), shift,
                      scale);
}

double
polyfitRmse(const Polynomial &p, const std::vector<double> &x,
            const std::vector<double> &y)
{
    fatalIf(x.size() != y.size(), "polyfitRmse: size mismatch");
    if (x.empty())
        return 0.0;
    double acc = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double r = p(x[i]) - y[i];
        acc += r * r;
    }
    return std::sqrt(acc / static_cast<double>(x.size()));
}

} // namespace flash::util
