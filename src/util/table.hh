/**
 * @file
 * Plain-text table printing for experiment harnesses.
 *
 * Every bench binary prints the rows/series of one paper figure or
 * table; this helper keeps their output aligned and uniform.
 */

#ifndef SENTINELFLASH_UTIL_TABLE_HH
#define SENTINELFLASH_UTIL_TABLE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace flash::util
{

/**
 * Column-aligned text table. Collect rows of strings, then print with
 * per-column widths computed from the content.
 */
class TextTable
{
  public:
    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append one data row. */
    void row(std::vector<std::string> cells);

    /** Render to a stream with aligned columns. */
    void print(std::ostream &os) const;

    /** Number of data rows so far. */
    std::size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with the given number of decimals. */
std::string fmt(double v, int decimals = 3);

/** Format a double in scientific notation (e.g. RBER values). */
std::string fmtSci(double v, int decimals = 2);

/** Format a percentage (0.74 -> "74.0%"). */
std::string fmtPct(double fraction, int decimals = 1);

/** Format an integer count. */
std::string fmtInt(std::int64_t v);

/** Print a section banner used by the bench harnesses. */
void banner(std::ostream &os, const std::string &title);

} // namespace flash::util

#endif // SENTINELFLASH_UTIL_TABLE_HH
