#include "util/bitplane.hh"

#include <algorithm>
#include <bit>

#include "util/logging.hh"

namespace flash::util
{

namespace
{

inline void
checkSizes(const Bitplane &a, const Bitplane &b)
{
    fatalIf(a.size() != b.size(), "bitplane: size mismatch");
}

} // namespace

void
Bitplane::maskTail()
{
    if (words_.empty())
        return;
    const std::size_t used = bits_ & 63;
    if (used)
        words_.back() &= (1ULL << used) - 1;
}

void
Bitplane::flip()
{
    for (auto &w : words_)
        w = ~w;
    maskTail();
}

std::uint64_t
Bitplane::popcount() const
{
    std::uint64_t n = 0;
    for (std::uint64_t w : words_)
        n += static_cast<std::uint64_t>(std::popcount(w));
    return n;
}

Bitplane &
Bitplane::operator^=(const Bitplane &other)
{
    checkSizes(*this, other);
    for (std::size_t i = 0; i < words_.size(); ++i)
        words_[i] ^= other.words_[i];
    return *this;
}

Bitplane &
Bitplane::operator|=(const Bitplane &other)
{
    checkSizes(*this, other);
    for (std::size_t i = 0; i < words_.size(); ++i)
        words_[i] |= other.words_[i];
    return *this;
}

Bitplane &
Bitplane::operator&=(const Bitplane &other)
{
    checkSizes(*this, other);
    for (std::size_t i = 0; i < words_.size(); ++i)
        words_[i] &= other.words_[i];
    return *this;
}

std::uint64_t
diffCount(const Bitplane &a, const Bitplane &b)
{
    checkSizes(a, b);
    std::uint64_t n = 0;
    const std::uint64_t *wa = a.words();
    const std::uint64_t *wb = b.words();
    for (std::size_t i = 0; i < a.wordCount(); ++i)
        n += static_cast<std::uint64_t>(std::popcount(wa[i] ^ wb[i]));
    return n;
}

std::uint64_t
andCount(const Bitplane &a, const Bitplane &b)
{
    checkSizes(a, b);
    std::uint64_t n = 0;
    const std::uint64_t *wa = a.words();
    const std::uint64_t *wb = b.words();
    for (std::size_t i = 0; i < a.wordCount(); ++i)
        n += static_cast<std::uint64_t>(std::popcount(wa[i] & wb[i]));
    return n;
}

std::uint64_t
andNotCount(const Bitplane &a, const Bitplane &b)
{
    checkSizes(a, b);
    std::uint64_t n = 0;
    const std::uint64_t *wa = a.words();
    const std::uint64_t *wb = b.words();
    for (std::size_t i = 0; i < a.wordCount(); ++i)
        n += static_cast<std::uint64_t>(std::popcount(wa[i] & ~wb[i]));
    return n;
}

std::uint64_t
maskedDiffCount(const Bitplane &mask, const Bitplane &a, const Bitplane &b)
{
    checkSizes(mask, a);
    checkSizes(a, b);
    std::uint64_t n = 0;
    const std::uint64_t *wm = mask.words();
    const std::uint64_t *wa = a.words();
    const std::uint64_t *wb = b.words();
    for (std::size_t i = 0; i < a.wordCount(); ++i) {
        n += static_cast<std::uint64_t>(
            std::popcount(wm[i] & (wa[i] ^ wb[i])));
    }
    return n;
}

void
Bitplane::expand(std::uint8_t *out) const
{
    const std::uint64_t *w = words_.data();
    for (std::size_t i = 0; i < bits_; i += 64) {
        const std::uint64_t word = w[i >> 6];
        const std::size_t m = std::min<std::size_t>(64, bits_ - i);
        for (std::size_t j = 0; j < m; ++j)
            out[i + j] = (word >> j) & 1;
    }
}

void
SlicedCounter3::add(const Bitplane &plane)
{
    checkSizes(s0_, plane);
    std::uint64_t *w0 = s0_.words();
    std::uint64_t *w1 = s1_.words();
    std::uint64_t *w2 = s2_.words();
    const std::uint64_t *wp = plane.words();
    for (std::size_t i = 0; i < s0_.wordCount(); ++i) {
        // Ripple-carry add of one bit into the 3-bit sliced counter;
        // a carry out of the top slice saturates the count at 7.
        const std::uint64_t c0 = w0[i] & wp[i];
        w0[i] ^= wp[i];
        const std::uint64_t c1 = w1[i] & c0;
        w1[i] ^= c0;
        const std::uint64_t c2 = w2[i] & c1;
        w2[i] ^= c1;
        w0[i] |= c2; // saturate: 8 would wrap to 0, pin to 7 instead
        w1[i] |= c2;
        w2[i] |= c2;
    }
}

void
SlicedCounter3::expand(std::uint8_t *out) const
{
    const std::uint64_t *w0 = s0_.words();
    const std::uint64_t *w1 = s1_.words();
    const std::uint64_t *w2 = s2_.words();
    const std::size_t bits = s0_.size();
    for (std::size_t i = 0; i < bits; i += 64) {
        const std::uint64_t b0 = w0[i >> 6];
        const std::uint64_t b1 = w1[i >> 6];
        const std::uint64_t b2 = w2[i >> 6];
        const std::size_t m = std::min<std::size_t>(64, bits - i);
        for (std::size_t j = 0; j < m; ++j) {
            out[i + j] = static_cast<std::uint8_t>(
                ((b0 >> j) & 1) | (((b1 >> j) & 1) << 1)
                | (((b2 >> j) & 1) << 2));
        }
    }
}

} // namespace flash::util
