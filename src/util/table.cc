#include "util/table.hh"

#include <algorithm>
#include <cstdio>

namespace flash::util
{

void
TextTable::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
TextTable::print(std::ostream &os) const
{
    std::size_t cols = header_.size();
    for (const auto &r : rows_)
        cols = std::max(cols, r.size());
    std::vector<std::size_t> width(cols, 0);
    auto measure = [&](const std::vector<std::string> &r) {
        for (std::size_t i = 0; i < r.size(); ++i)
            width[i] = std::max(width[i], r[i].size());
    };
    if (!header_.empty())
        measure(header_);
    for (const auto &r : rows_)
        measure(r);

    auto emit = [&](const std::vector<std::string> &r) {
        for (std::size_t i = 0; i < r.size(); ++i) {
            os << r[i];
            if (i + 1 < r.size())
                os << std::string(width[i] - r[i].size() + 2, ' ');
        }
        os << '\n';
    };
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t i = 0; i < cols; ++i)
            total += width[i] + (i + 1 < cols ? 2 : 0);
        os << std::string(total, '-') << '\n';
    }
    for (const auto &r : rows_)
        emit(r);
}

std::string
fmt(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
fmtSci(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*e", decimals, v);
    return buf;
}

std::string
fmtPct(double fraction, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
    return buf;
}

std::string
fmtInt(std::int64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
}

void
banner(std::ostream &os, const std::string &title)
{
    os << '\n' << "== " << title << " ==\n";
}

} // namespace flash::util
