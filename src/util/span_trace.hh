/**
 * @file
 * Causal span tracing for the read pipeline (`--trace-spans FILE`).
 *
 * A span is one timed step of the causal read path (host request,
 * page op, read session, retry attempt, assist read, calibration
 * step, transfer, scrub probe, refresh, ...), linked to its parent.
 * Spans replaced the flat `read_session`/`read_op` events of the
 * legacy `--trace-out` log (removed) with full parent-linked trees
 * that tools/trace_analyze can rebuild, verify and break down into
 * per-request critical paths.
 *
 * Determinism: span ids derive from the emission sequence, never from
 * wall clock or thread interleaving. Sessions record their spans into
 * a private SpanBuffer during the parallel phase; the sequential
 * reduction (wordline order / request order) rebases each buffer into
 * the shared SpanTrace, so the serialized trace is byte-identical at
 * any `--threads N`. The sink is bounded: once the capacity is
 * reached, whole sessions are dropped atomically (trees stay
 * complete, no orphans) and counted in dropped_spans — overflow is
 * explicit, never a silent truncation.
 *
 * Schema (JSON lines): one span per line,
 *   {"span": "<class>", "id": I, "parent": P, "start_us": S,
 *    "dur_us": D, ...attributes}
 * with parent 0 meaning "root", followed by one summary line
 *   {"span_summary": 1, "spans": N, "dropped_spans": M}.
 * See DESIGN.md §12.
 */

#ifndef SENTINELFLASH_UTIL_SPAN_TRACE_HH
#define SENTINELFLASH_UTIL_SPAN_TRACE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace flash::util
{

/** One recorded span. Keys/classes must be static strings. */
struct SpanRec
{
    int parent = -1;      ///< buffer-local parent index; -1 = root
    const char *cls = ""; ///< span class ("attempt", "read_op", ...)
    double startUs = 0.0;
    double durUs = 0.0;
    const char *strKey = nullptr; ///< optional string attribute key
    std::string strVal;
    std::vector<std::pair<const char *, double>> nums;
};

/**
 * Per-session span recorder. Cheap to fill from worker threads (each
 * session owns its buffer exclusively); parents must be begun before
 * their children, so buffer order is causal order.
 */
class SpanBuffer
{
  public:
    /** Start a span; returns its buffer-local index. */
    int begin(const char *cls, int parent = -1);

    /** Append a numeric attribute. */
    void num(int span, const char *key, double value);

    /** Set the span's (single) string attribute. */
    void str(int span, const char *key, std::string value);

    /** Assign the span's interval. */
    void time(int span, double start_us, double dur_us);

    /** Value of a numeric attribute (fallback when absent). */
    double numAttr(int span, const char *key, double fallback = 0.0) const;

    int size() const { return static_cast<int>(spans_.size()); }
    bool empty() const { return spans_.empty(); }
    SpanRec &rec(int span) { return spans_[static_cast<std::size_t>(span)]; }
    const SpanRec &rec(int span) const
    {
        return spans_[static_cast<std::size_t>(span)];
    }
    void clear() { spans_.clear(); }

  private:
    std::vector<SpanRec> spans_;
};

/**
 * Bounded in-memory span sink. emit() rebases a session's buffer onto
 * globally unique ids (dense, 1-based, in emission order); call it
 * only from the deterministic sequential phase. writeJsonLines()
 * serializes every kept span plus the summary line.
 */
class SpanTrace
{
  public:
    /** Default capacity (spans), ample for the smoke configs. */
    static constexpr std::size_t kDefaultCapacity = 1u << 20;

    explicit SpanTrace(std::size_t capacity = kDefaultCapacity)
        : capacity_(capacity)
    {}

    /**
     * Append all spans of @p buf, resolving local parent links to
     * global ids. When the buffer does not fit in the remaining
     * capacity the whole session is dropped (counted in
     * droppedSpans()); returns whether the spans were kept.
     */
    bool emit(const SpanBuffer &buf);

    /** Spans kept so far. */
    std::uint64_t spans() const { return flat_.size(); }

    /** Spans dropped on overflow (whole sessions at a time). */
    std::uint64_t droppedSpans() const { return dropped_; }

    /** Capacity in spans. */
    std::size_t capacity() const { return capacity_; }

    /** Serialize all spans plus the summary line (see file doc). */
    void writeJsonLines(std::ostream &os) const;

  private:
    struct FlatSpan
    {
        std::uint64_t id = 0;
        std::uint64_t parent = 0; ///< 0 = root
        SpanRec rec;
    };

    std::size_t capacity_;
    std::vector<FlatSpan> flat_;
    std::uint64_t dropped_ = 0;
};

} // namespace flash::util

#endif // SENTINELFLASH_UTIL_SPAN_TRACE_HH
