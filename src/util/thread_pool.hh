/**
 * @file
 * A small fixed-size thread pool with a deterministic parallel-for.
 *
 * Work is partitioned statically: worker t of W always receives the
 * same contiguous index range of [0, n), so the mapping of iterations
 * to threads never depends on scheduling. Combined with the
 * order-independent read sequencing of nandsim/read_seq.hh this lets
 * the evaluators produce bit-identical results at any thread count:
 * each iteration writes only its own output slot and the reduction
 * runs sequentially afterwards.
 */

#ifndef SENTINELFLASH_UTIL_THREAD_POOL_HH
#define SENTINELFLASH_UTIL_THREAD_POOL_HH

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace flash::util
{

/** Worker threads available on this machine (always >= 1). */
int hardwareThreads();

/**
 * Fixed-size pool. Workers are created once and reused across
 * parallelFor() calls; with one thread no workers are spawned and
 * everything runs inline on the caller.
 */
class ThreadPool
{
  public:
    /** @param threads Total threads used per parallelFor (>= 1). */
    explicit ThreadPool(int threads);

    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Threads used per parallelFor (including the caller). */
    int threads() const { return threads_; }

    /**
     * Run fn(i) for every i in [0, n) and block until done. Each of
     * the T threads handles one contiguous chunk of ceil(n/T)
     * indices (the caller runs chunk 0). Exceptions thrown by fn are
     * captured and the first one (lowest chunk) is rethrown here.
     */
    void parallelFor(int n, const std::function<void(int)> &fn);

  private:
    void workerLoop(int worker);
    void runChunk(int chunk, int chunks) const;

    int threads_;
    std::vector<std::thread> workers_;

    std::mutex mu_;
    std::condition_variable wake_;
    std::condition_variable done_;
    const std::function<void(int)> *fn_ = nullptr;
    int n_ = 0;
    int chunks_ = 0;
    std::uint64_t epoch_ = 0;
    int pending_ = 0;
    bool stop_ = false;
    std::vector<std::exception_ptr> errors_;
};

/**
 * One-shot deterministic parallel-for over [0, n) on @p threads
 * threads (a transient ThreadPool; threads <= 1 runs inline).
 */
void parallelFor(int threads, int n, const std::function<void(int)> &fn);

} // namespace flash::util

#endif // SENTINELFLASH_UTIL_THREAD_POOL_HH
