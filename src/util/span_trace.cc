#include "util/span_trace.hh"

#include <cstring>

#include "util/logging.hh"
#include "util/metrics.hh"

namespace flash::util
{

int
SpanBuffer::begin(const char *cls, int parent)
{
    fatalIf(parent >= static_cast<int>(spans_.size()),
            "SpanBuffer: parent span does not exist yet");
    SpanRec rec;
    rec.parent = parent < 0 ? -1 : parent;
    rec.cls = cls;
    spans_.push_back(std::move(rec));
    return static_cast<int>(spans_.size()) - 1;
}

void
SpanBuffer::num(int span, const char *key, double value)
{
    spans_[static_cast<std::size_t>(span)].nums.emplace_back(key, value);
}

void
SpanBuffer::str(int span, const char *key, std::string value)
{
    auto &rec = spans_[static_cast<std::size_t>(span)];
    rec.strKey = key;
    rec.strVal = std::move(value);
}

void
SpanBuffer::time(int span, double start_us, double dur_us)
{
    auto &rec = spans_[static_cast<std::size_t>(span)];
    rec.startUs = start_us;
    rec.durUs = dur_us;
}

double
SpanBuffer::numAttr(int span, const char *key, double fallback) const
{
    for (const auto &[k, v] : spans_[static_cast<std::size_t>(span)].nums) {
        if (std::strcmp(k, key) == 0)
            return v;
    }
    return fallback;
}

bool
SpanTrace::emit(const SpanBuffer &buf)
{
    if (buf.empty())
        return true;
    const std::size_t n = static_cast<std::size_t>(buf.size());
    if (flat_.size() + n > capacity_) {
        // Drop the whole session: partial trees would orphan children
        // and break the analyzer's invariants.
        dropped_ += n;
        return false;
    }
    const std::uint64_t base = flat_.size();
    for (int i = 0; i < buf.size(); ++i) {
        FlatSpan fs;
        fs.id = base + static_cast<std::uint64_t>(i) + 1;
        const int parent = buf.rec(i).parent;
        fs.parent = parent < 0
            ? 0
            : base + static_cast<std::uint64_t>(parent) + 1;
        fs.rec = buf.rec(i);
        flat_.push_back(std::move(fs));
    }
    return true;
}

void
SpanTrace::writeJsonLines(std::ostream &os) const
{
    for (const auto &fs : flat_) {
        os << "{\"span\": \"" << jsonEscape(fs.rec.cls) << "\", \"id\": "
           << fs.id << ", \"parent\": " << fs.parent << ", \"start_us\": ";
        writeJsonValue(os, fs.rec.startUs);
        os << ", \"dur_us\": ";
        writeJsonValue(os, fs.rec.durUs);
        if (fs.rec.strKey) {
            os << ", \"" << jsonEscape(fs.rec.strKey) << "\": \""
               << jsonEscape(fs.rec.strVal) << '"';
        }
        for (const auto &[key, value] : fs.rec.nums) {
            os << ", \"" << jsonEscape(key) << "\": ";
            writeJsonValue(os, value);
        }
        os << "}\n";
    }
    os << "{\"span_summary\": 1, \"spans\": " << flat_.size()
       << ", \"dropped_spans\": " << dropped_ << "}\n";
}

} // namespace flash::util
