#include "util/json.hh"

#include <cctype>
#include <charconv>

#include "util/logging.hh"

namespace flash::util
{

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (type != Type::Object)
        return nullptr;
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
}

namespace
{

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    JsonValue
    parse()
    {
        JsonValue v = value();
        skipWs();
        fatalIf(pos_ != text_.size(), "json: trailing characters");
        return v;
    }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size()
               && std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        fatalIf(pos_ >= text_.size(), "json: unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        fatalIf(peek() != c,
                std::string("json: expected '") + c + "' at offset "
                    + std::to_string(pos_));
        ++pos_;
    }

    bool
    consume(const char *lit)
    {
        const std::size_t n = std::char_traits<char>::length(lit);
        if (text_.compare(pos_, n, lit) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    JsonValue
    value()
    {
        skipWs();
        JsonValue v;
        const char c = peek();
        if (c == '{') {
            v.type = JsonValue::Type::Object;
            ++pos_;
            skipWs();
            if (peek() == '}') {
                ++pos_;
                return v;
            }
            while (true) {
                skipWs();
                std::string key = parseString();
                skipWs();
                expect(':');
                v.object[key] = value();
                skipWs();
                if (peek() == ',') {
                    ++pos_;
                    continue;
                }
                expect('}');
                break;
            }
        } else if (c == '[') {
            v.type = JsonValue::Type::Array;
            ++pos_;
            skipWs();
            if (peek() == ']') {
                ++pos_;
                return v;
            }
            while (true) {
                v.array.push_back(value());
                skipWs();
                if (peek() == ',') {
                    ++pos_;
                    continue;
                }
                expect(']');
                break;
            }
        } else if (c == '"') {
            v.type = JsonValue::Type::String;
            v.string = parseString();
        } else if (consume("true")) {
            v.type = JsonValue::Type::Bool;
            v.boolean = true;
        } else if (consume("false")) {
            v.type = JsonValue::Type::Bool;
            v.boolean = false;
        } else if (consume("null")) {
            v.type = JsonValue::Type::Null;
        } else {
            v.type = JsonValue::Type::Number;
            v.number = parseNumber();
        }
        return v;
    }

    /** Four hex digits of a \\u escape (cursor already past "\\u"). */
    unsigned
    hex4()
    {
        fatalIf(pos_ + 4 > text_.size(), "json: bad \\u escape");
        unsigned code = 0;
        const auto res = std::from_chars(
            text_.data() + pos_, text_.data() + pos_ + 4, code, 16);
        fatalIf(res.ec != std::errc() || res.ptr != text_.data() + pos_ + 4,
                "json: bad \\u escape");
        pos_ += 4;
        return code;
    }

    /** Append one code point as UTF-8. */
    static void
    appendUtf8(std::string &out, unsigned code)
    {
        if (code < 0x80) {
            out += static_cast<char>(code);
        } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
        } else if (code < 0x10000) {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
        } else {
            out += static_cast<char>(0xf0 | (code >> 18));
            out += static_cast<char>(0x80 | ((code >> 12) & 0x3f));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            fatalIf(pos_ >= text_.size(), "json: unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                break;
            if (c != '\\') {
                out += c;
                continue;
            }
            fatalIf(pos_ >= text_.size(), "json: dangling escape");
            const char e = text_[pos_++];
            switch (e) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'n': out += '\n'; break;
            case 't': out += '\t'; break;
            case 'r': out += '\r'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'u': {
                unsigned code = hex4();
                if (code >= 0xd800 && code <= 0xdbff) {
                    // High surrogate: a low surrogate must follow.
                    fatalIf(pos_ + 2 > text_.size() || text_[pos_] != '\\'
                                || text_[pos_ + 1] != 'u',
                            "json: unpaired surrogate");
                    pos_ += 2;
                    const unsigned low = hex4();
                    fatalIf(low < 0xdc00 || low > 0xdfff,
                            "json: unpaired surrogate");
                    code = 0x10000 + ((code - 0xd800) << 10)
                        + (low - 0xdc00);
                } else {
                    fatalIf(code >= 0xdc00 && code <= 0xdfff,
                            "json: unpaired surrogate");
                }
                appendUtf8(out, code);
                break;
            }
            default:
                fatal("json: unknown escape");
            }
        }
        return out;
    }

    double
    parseNumber()
    {
        double out = 0.0;
        const auto res = std::from_chars(text_.data() + pos_,
                                         text_.data() + text_.size(), out);
        fatalIf(res.ec != std::errc(), "json: bad number at offset "
                                           + std::to_string(pos_));
        pos_ = static_cast<std::size_t>(res.ptr - text_.data());
        return out;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

JsonValue
parseJson(const std::string &text)
{
    return Parser(text).parse();
}

} // namespace flash::util
