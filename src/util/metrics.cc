#include "util/metrics.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/json.hh"
#include "util/logging.hh"

namespace flash::util
{

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    // %.17g round-trips every double and formats the same bytes for
    // the same value, which the golden-stats tests rely on.
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

void
writeJsonValue(std::ostream &os, double v)
{
    if (v == std::floor(v) && std::abs(v) < 1e15) {
        os << static_cast<long long>(v);
    } else {
        os << jsonNumber(v);
    }
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            // Control characters must be \u-escaped; the cast keeps
            // bytes >= 0x80 (UTF-8 continuations, passed through
            // verbatim) from sign-extending into bogus escapes.
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

int
LatencyHistogram::binOf(double v)
{
    if (!(v > 0.0))
        return 0;
    if (v < 1.0)
        return 0;
    int e = 0;
    const double frac = std::frexp(v, &e); // v = frac * 2^e, frac in [0.5,1)
    // Power-of-two range [2^(e-1), 2^e): linear position of v inside.
    const int sub = std::min(
        kSubBins - 1,
        static_cast<int>((frac - 0.5) * 2.0 * kSubBins));
    const int range = std::min(e - 1, 63); // cap at ~9.2e18
    return 1 + range * kSubBins + sub;
}

double
LatencyHistogram::binLo(int idx)
{
    if (idx <= 0)
        return 0.0;
    const int range = (idx - 1) / kSubBins;
    const int sub = (idx - 1) % kSubBins;
    const double base = std::ldexp(1.0, range);
    return base * (1.0 + static_cast<double>(sub) / kSubBins);
}

double
LatencyHistogram::binHi(int idx)
{
    if (idx <= 0)
        return 1.0;
    const int range = (idx - 1) / kSubBins;
    const int sub = (idx - 1) % kSubBins;
    const double base = std::ldexp(1.0, range);
    return base * (1.0 + static_cast<double>(sub + 1) / kSubBins);
}

void
LatencyHistogram::add(double v)
{
    if (v < 0.0 || !std::isfinite(v))
        v = 0.0;
    const int idx = binOf(v);
    if (static_cast<std::size_t>(idx) >= bins_.size())
        bins_.resize(static_cast<std::size_t>(idx) + 1, 0);
    ++bins_[static_cast<std::size_t>(idx)];
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_.add(v);
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    if (other.count_ == 0)
        return;
    if (other.bins_.size() > bins_.size())
        bins_.resize(other.bins_.size(), 0);
    for (std::size_t i = 0; i < other.bins_.size(); ++i)
        bins_[i] += other.bins_[i];
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    sum_.merge(other.sum_);
}

int
LatencyHistogram::percentileBin(double q) const
{
    if (count_ == 0)
        return -1;
    q = std::clamp(q, 0.0, 1.0);
    // Nearest-rank over integer bin counts: deterministic regardless
    // of the order observations arrived in.
    const std::uint64_t target = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(q * static_cast<double>(count_))));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        seen += bins_[i];
        if (seen >= target)
            return static_cast<int>(i);
    }
    return static_cast<int>(bins_.size()) - 1;
}

std::uint64_t
LatencyHistogram::countFromBin(int bin) const
{
    std::uint64_t seen = 0;
    for (std::size_t i = static_cast<std::size_t>(std::max(bin, 0));
         i < bins_.size(); ++i) {
        seen += bins_[i];
    }
    return seen;
}

double
LatencyHistogram::percentile(double q) const
{
    const int bin = percentileBin(q);
    if (bin < 0)
        return 0.0;
    const double mid = 0.5 * (binLo(bin) + binHi(bin));
    return std::clamp(mid, min_, max_);
}

void
LatencyHistogram::writeJson(std::ostream &os) const
{
    os << "{\"count\": " << count_
       << ", \"sum\": " << jsonNumber(sum())
       << ", \"min\": " << jsonNumber(min())
       << ", \"max\": " << jsonNumber(max())
       << ", \"mean\": " << jsonNumber(mean())
       << ", \"p50\": " << jsonNumber(percentile(0.50))
       << ", \"p90\": " << jsonNumber(percentile(0.90))
       << ", \"p99\": " << jsonNumber(percentile(0.99))
       << ", \"p999\": " << jsonNumber(percentile(0.999)) << "}";
}

void
LatencyHistogram::writeBinsJson(std::ostream &os) const
{
    os << "{\"count\": " << count_
       << ", \"min\": " << jsonNumber(min())
       << ", \"max\": " << jsonNumber(max())
       << ", \"sum\": " << jsonNumber(sum())
       << ", \"bins\": [";
    bool first = true;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        if (bins_[i] == 0)
            continue;
        os << (first ? "" : ", ") << '[' << i << ", " << bins_[i] << ']';
        first = false;
    }
    os << "]}";
}

LatencyHistogram
LatencyHistogram::fromBinsJson(const JsonValue &v)
{
    fatalIf(!v.isObject(), "histogram bins: expected an object");
    const JsonValue *bins = v.find("bins");
    const JsonValue *min = v.find("min");
    const JsonValue *max = v.find("max");
    const JsonValue *sum = v.find("sum");
    const JsonValue *count = v.find("count");
    fatalIf(bins == nullptr || bins->type != JsonValue::Type::Array
                || min == nullptr || !min->isNumber() || max == nullptr
                || !max->isNumber() || sum == nullptr || !sum->isNumber()
                || count == nullptr || !count->isNumber(),
            "histogram bins: missing or mistyped field");

    LatencyHistogram h;
    for (const JsonValue &entry : bins->array) {
        fatalIf(entry.type != JsonValue::Type::Array
                    || entry.array.size() != 2 || !entry.array[0].isNumber()
                    || !entry.array[1].isNumber()
                    || entry.array[0].number < 0.0
                    || entry.array[1].number <= 0.0,
                "histogram bins: bad [index, count] entry");
        const auto idx = static_cast<std::size_t>(entry.array[0].number);
        if (idx >= h.bins_.size())
            h.bins_.resize(idx + 1, 0);
        const auto n = static_cast<std::uint64_t>(entry.array[1].number);
        h.bins_[idx] += n;
        h.count_ += n;
    }
    fatalIf(static_cast<double>(h.count_) != count->number,
            "histogram bins: count does not match bin totals");
    if (h.count_ > 0) {
        h.min_ = min->number;
        h.max_ = max->number;
        h.sum_.add(sum->number);
    }
    return h;
}

std::size_t
LatencyHistogram::footprintBytes() const
{
    return sizeof(LatencyHistogram)
        + bins_.size() * sizeof(std::uint64_t);
}

void
MetricsRegistry::add(const std::string &name, std::uint64_t delta)
{
    counters_[name] += delta;
}

std::uint64_t
MetricsRegistry::counter(const std::string &name) const
{
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

void
MetricsRegistry::observe(const std::string &name, double value)
{
    histograms_[name].add(value);
}

LatencyHistogram &
MetricsRegistry::histogram(const std::string &name)
{
    return histograms_[name];
}

const LatencyHistogram *
MetricsRegistry::findHistogram(const std::string &name) const
{
    const auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
}

void
MetricsRegistry::merge(const MetricsRegistry &other)
{
    for (const auto &[name, value] : other.counters_)
        counters_[name] += value;
    for (const auto &[name, hist] : other.histograms_)
        histograms_[name].merge(hist);
}

void
MetricsRegistry::mergePrefixed(const MetricsRegistry &other,
                               const std::string &prefix)
{
    for (const auto &[name, value] : other.counters_)
        counters_[prefix + name] += value;
    for (const auto &[name, hist] : other.histograms_)
        histograms_[prefix + name].merge(hist);
}

std::size_t
MetricsRegistry::footprintBytes() const
{
    std::size_t bytes = sizeof(MetricsRegistry);
    for (const auto &[name, value] : counters_) {
        (void)value;
        bytes += sizeof(std::uint64_t) + name.size() + 48;
    }
    for (const auto &[name, hist] : histograms_)
        bytes += hist.footprintBytes() + name.size() + 48;
    return bytes;
}

void
MetricsRegistry::writeJson(std::ostream &os) const
{
    os << "{\"counters\": {";
    bool first = true;
    for (const auto &[name, value] : counters_) {
        if (!first)
            os << ", ";
        first = false;
        os << '"' << jsonEscape(name) << "\": " << value;
    }
    os << "}, \"histograms\": {";
    first = true;
    for (const auto &[name, hist] : histograms_) {
        if (!first)
            os << ", ";
        first = false;
        os << '"' << jsonEscape(name) << "\": ";
        hist.writeJson(os);
    }
    os << "}}";
}

std::string
MetricsRegistry::toJson() const
{
    std::ostringstream ss;
    writeJson(ss);
    return ss.str();
}

} // namespace flash::util
