/**
 * @file
 * Least-squares polynomial fitting.
 *
 * The factory characterization fits a degree-5 polynomial mapping the
 * sentinel error-difference rate to the optimal read-voltage offset,
 * exactly as the paper does (Fig 10).
 */

#ifndef SENTINELFLASH_UTIL_POLYFIT_HH
#define SENTINELFLASH_UTIL_POLYFIT_HH

#include <cstddef>
#include <vector>

namespace flash::util
{

/**
 * A fitted polynomial p(x) = sum_i coeff[i] * x_scaled^i, where
 * x_scaled = (x - xShift) * xScale. The input is normalized before
 * fitting so the normal equations stay well conditioned at degree 5.
 */
class Polynomial
{
  public:
    Polynomial() = default;

    Polynomial(std::vector<double> coeffs, double x_shift, double x_scale)
        : coeffs_(std::move(coeffs)), xShift_(x_shift), xScale_(x_scale)
    {}

    /** Evaluate the polynomial at @p x (Horner). */
    double operator()(double x) const;

    /** Polynomial degree (0 when empty). */
    std::size_t degree() const { return coeffs_.empty() ? 0 : coeffs_.size() - 1; }

    /** Coefficients in the scaled domain, lowest order first. */
    const std::vector<double> &coeffs() const { return coeffs_; }

    /** Input normalization shift (serialization support). */
    double xShift() const { return xShift_; }

    /** Input normalization scale (serialization support). */
    double xScale() const { return xScale_; }

    /** True once a fit has been installed. */
    bool valid() const { return !coeffs_.empty(); }

  private:
    std::vector<double> coeffs_;
    double xShift_ = 0.0;
    double xScale_ = 1.0;
};

/**
 * Fit a polynomial of the given degree to (x, y) by least squares.
 * Uses normal equations with Gaussian elimination and partial
 * pivoting on normalized inputs.
 *
 * @param x Sample abscissae (size >= degree + 1).
 * @param y Sample ordinates (same size as x).
 * @param degree Polynomial degree.
 * @return The fitted polynomial.
 */
Polynomial polyfit(const std::vector<double> &x, const std::vector<double> &y,
                   std::size_t degree);

/** Root-mean-square residual of a fit over the sample set. */
double polyfitRmse(const Polynomial &p, const std::vector<double> &x,
                   const std::vector<double> &y);

} // namespace flash::util

#endif // SENTINELFLASH_UTIL_POLYFIT_HH
