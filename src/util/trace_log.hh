/**
 * @file
 * JSON-lines event trace for the read pipeline (`--trace-out FILE`).
 *
 * One event per line: {"event": "<type>", "<key>": <number>, ...}
 * with optional string-valued fields. Events are emitted from the
 * sequential phases of the simulators/evaluators, so a trace written
 * at `--threads N` is byte-identical to the single-threaded one.
 * Schema: see DESIGN.md §10.
 */

#ifndef SENTINELFLASH_UTIL_TRACE_LOG_HH
#define SENTINELFLASH_UTIL_TRACE_LOG_HH

#include <initializer_list>
#include <ostream>
#include <string>
#include <utility>

namespace flash::util
{

/** Appends JSON-lines events to a caller-owned stream. */
class TraceLog
{
  public:
    using NumField = std::pair<const char *, double>;
    using StrField = std::pair<const char *, std::string>;

    explicit TraceLog(std::ostream &os) : os_(&os) {}

    /** Emit one event with numeric fields only. */
    void event(const char *type, std::initializer_list<NumField> nums);

    /** Emit one event with string and numeric fields. */
    void event(const char *type, std::initializer_list<StrField> strs,
               std::initializer_list<NumField> nums);

    /** Number of events emitted so far. */
    std::uint64_t events() const { return events_; }

  private:
    std::ostream *os_;
    std::uint64_t events_ = 0;
};

} // namespace flash::util

#endif // SENTINELFLASH_UTIL_TRACE_LOG_HH
