/**
 * @file
 * JSON-lines event trace for the read pipeline (`--trace-out FILE`).
 *
 * One event per line: {"event": "<type>", "<key>": <number>, ...}
 * with optional string-valued fields. Events are emitted from the
 * sequential phases of the simulators/evaluators, so a trace written
 * at `--threads N` is byte-identical to the single-threaded one.
 * Schema: see DESIGN.md §10.
 *
 * Deprecated in favour of the parent-linked span trace
 * (util::span_trace, `--trace-spans`); the flat `read_session` /
 * `read_op` event schema stays emittable behind `--trace-out` for one
 * release. The sink is optionally bounded: past max_events, events
 * are dropped and counted in droppedEvents(), never silently
 * truncated.
 */

#ifndef SENTINELFLASH_UTIL_TRACE_LOG_HH
#define SENTINELFLASH_UTIL_TRACE_LOG_HH

#include <initializer_list>
#include <ostream>
#include <string>
#include <utility>

namespace flash::util
{

/** Appends JSON-lines events to a caller-owned stream. */
class TraceLog
{
  public:
    using NumField = std::pair<const char *, double>;
    using StrField = std::pair<const char *, std::string>;

    /** @param max_events Event budget; 0 means unbounded. */
    explicit TraceLog(std::ostream &os, std::uint64_t max_events = 0)
        : os_(&os), maxEvents_(max_events)
    {}

    /** Emit one event with numeric fields only. */
    void event(const char *type, std::initializer_list<NumField> nums);

    /** Emit one event with string and numeric fields. */
    void event(const char *type, std::initializer_list<StrField> strs,
               std::initializer_list<NumField> nums);

    /** Number of events emitted so far. */
    std::uint64_t events() const { return events_; }

    /** Events dropped because the budget was exhausted. */
    std::uint64_t droppedEvents() const { return dropped_; }

  private:
    std::ostream *os_;
    std::uint64_t maxEvents_;
    std::uint64_t events_ = 0;
    std::uint64_t dropped_ = 0;
};

} // namespace flash::util

#endif // SENTINELFLASH_UTIL_TRACE_LOG_HH
