/**
 * @file
 * Minimal recursive-descent JSON parser.
 *
 * Just enough JSON to read back the metrics exports and trace events
 * this repo writes (tools/metrics_diff, tests): objects, arrays,
 * strings with the escapes jsonEscape() emits, doubles, booleans and
 * null. Throws util::FatalError on malformed input.
 */

#ifndef SENTINELFLASH_UTIL_JSON_HH
#define SENTINELFLASH_UTIL_JSON_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace flash::util
{

/** One parsed JSON value. */
class JsonValue
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    // Key order of the document is irrelevant to the consumers;
    // a map gives deterministic iteration.
    std::map<std::string, JsonValue> object;

    bool isNumber() const { return type == Type::Number; }
    bool isObject() const { return type == Type::Object; }

    /** Member lookup (nullptr when absent or not an object). */
    const JsonValue *find(const std::string &key) const;
};

/** Parse one JSON document (fatal on trailing garbage). */
JsonValue parseJson(const std::string &text);

} // namespace flash::util

#endif // SENTINELFLASH_UTIL_JSON_HH
