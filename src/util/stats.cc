#include "util/stats.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace flash::util
{

void
RunningStats::add(double x)
{
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
RunningStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
percentile(std::vector<double> values, double q)
{
    if (values.empty())
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    std::sort(values.begin(), values.end());
    const double pos = q * static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double
mean(const std::vector<double> &values)
{
    RunningStats s;
    for (double v : values)
        s.add(v);
    return s.mean();
}

double
stddev(const std::vector<double> &values)
{
    RunningStats s;
    for (double v : values)
        s.add(v);
    return s.stddev();
}

double
pearson(const std::vector<double> &x, const std::vector<double> &y)
{
    fatalIf(x.size() != y.size(), "pearson: length mismatch");
    if (x.size() < 2)
        return 0.0;
    const double mx = mean(x);
    const double my = mean(y);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double dx = x[i] - mx;
        const double dy = y[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx <= 0.0 || syy <= 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

} // namespace flash::util
