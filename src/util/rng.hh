/**
 * @file
 * Counter-based deterministic random number utilities.
 *
 * The chip model derives every cell's static noise from a pure hash of
 * its address, so a simulated chip is fully reproducible from a single
 * seed and requires no per-cell storage. Per-read sensing noise mixes
 * in a read-sequence counter.
 */

#ifndef SENTINELFLASH_UTIL_RNG_HH
#define SENTINELFLASH_UTIL_RNG_HH

#include <cstdint>
#include <initializer_list>

namespace flash::util
{

/**
 * Mix a 64-bit value into a well-distributed 64-bit hash
 * (the splitmix64 finalizer).
 */
std::uint64_t mix64(std::uint64_t x);

/** Combine two 64-bit values into one hash. */
std::uint64_t hashCombine(std::uint64_t a, std::uint64_t b);

/** Hash an arbitrary number of 64-bit words. */
std::uint64_t hashWords(std::initializer_list<std::uint64_t> words);

/** Rotate left. */
constexpr std::uint64_t
rotl64(std::uint64_t x, int r)
{
    return (x << r) | (x >> (64 - r));
}

/**
 * Fast keyed hash of a handful of words for the per-cell hot paths.
 * Weaker mixing per word than hashWords() but a final strong
 * finalizer; plenty for simulation noise.
 */
template <typename... Words>
inline std::uint64_t
fastHash(std::uint64_t first, Words... rest)
{
    constexpr std::uint64_t m1 = 0x9e3779b97f4a7c15ULL;
    constexpr std::uint64_t m2 = 0xc2b2ae3d27d4eb4fULL;
    std::uint64_t h = first * m1;
    ((h = rotl64(h ^ (static_cast<std::uint64_t>(rest) * m2), 29) * m1),
     ...);
    return mix64(h);
}

/** Map a 64-bit hash to a uniform double in [0, 1). */
double toUnitUniform(std::uint64_t h);

/**
 * Map a 64-bit hash to a standard-normal sample via the inverse
 * normal CDF (Wichura AS241-style rational approximation; absolute
 * error far below what a Vth model can notice).
 */
double toGaussian(std::uint64_t h);

/**
 * A small keyed generator for streaming use (experiment harnesses,
 * trace generation). Deterministic for a given seed; cheap to copy.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : state_(mix64(seed ^ kStreamSalt)) {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        state_ += 0x9e3779b97f4a7c15ULL;
        return mix64(state_);
    }

    /** Uniform double in [0, 1). */
    double uniform() { return toUnitUniform(next()); }

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t uniformInt(std::uint64_t n) { return next() % n; }

    /** Standard normal sample. */
    double gaussian() { return toGaussian(next()); }

    /** Normal sample with given mean and standard deviation. */
    double gaussian(double mean, double sigma) { return mean + sigma * gaussian(); }

    /** Bernoulli draw with probability p of true. */
    bool bernoulli(double p) { return uniform() < p; }

    /** Exponential sample with the given mean. */
    double exponential(double mean);

    /** Poisson sample (inversion for small lambda, normal approx above). */
    std::uint64_t poisson(double lambda);

  private:
    static constexpr std::uint64_t kStreamSalt = 0xa02bdbf7bb3c0a7ULL;

    std::uint64_t state_;
};

} // namespace flash::util

#endif // SENTINELFLASH_UTIL_RNG_HH
