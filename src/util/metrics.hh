/**
 * @file
 * Lightweight metrics registry for the read pipeline: named counters
 * and fixed-bin latency histograms with percentile queries.
 *
 * Everything here is built for deterministic, mergeable accumulation:
 * a histogram is a vector of integer bin counts (log2 buckets split
 * into linear sub-bins, HdrHistogram style), so merging per-shard
 * instances bin-wise is exactly equivalent to a single-pass fill and
 * the exported percentiles are bit-identical at any thread count.
 * Observation sums are held in a util::ExactSum superaccumulator, so
 * even the floating-point totals are a pure function of the multiset
 * of observations: merging K shard registries in any permutation
 * exports the same bytes as one registry that saw everything — the
 * property the fleet rollups rely on. (Recording itself is still not
 * thread-safe: accumulate per shard and merge.)
 */

#ifndef SENTINELFLASH_UTIL_METRICS_HH
#define SENTINELFLASH_UTIL_METRICS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "util/exact_sum.hh"

namespace flash::util
{

class JsonValue;

/** Format a double for JSON (shortest round-trip, deterministic). */
std::string jsonNumber(double v);

/**
 * Write a JSON number; integral values print without an exponent or
 * decimal point so counts stay greppable (shared by the trace sinks).
 */
void writeJsonValue(std::ostream &os, double v);

/**
 * Escape a string for embedding in JSON: quotes, backslashes and
 * control characters are escaped; non-ASCII bytes (UTF-8) pass
 * through verbatim, which is valid JSON. Round-trips exactly through
 * util::parseJson.
 */
std::string jsonEscape(const std::string &s);

/**
 * Fixed-bin latency histogram over non-negative values (microseconds
 * by convention). Bin layout: one bin per value below 1.0, then each
 * power-of-two range [2^e, 2^(e+1)) is split into kSubBins linear
 * sub-bins, bounding the relative quantization error of a percentile
 * by 1/kSubBins. Bins are integer counts, so merge() is exact and
 * order-independent.
 */
class LatencyHistogram
{
  public:
    /** Linear sub-bins per power-of-two range. */
    static constexpr int kSubBins = 64;

    /** Record one observation (negatives clamp to 0). */
    void add(double v);

    /** Merge another histogram into this one (exact, bin-wise). */
    void merge(const LatencyHistogram &other);

    /** Number of observations. */
    std::uint64_t count() const { return count_; }

    /**
     * Sum of observations: the exact total rounded once to double, so
     * it is identical however the observations were sharded or the
     * shards merged (see util::ExactSum).
     */
    double sum() const { return sum_.value(); }

    /** Arithmetic mean (0 when empty). */
    double mean() const
    {
        return count_ ? sum_.value() / static_cast<double>(count_) : 0.0;
    }

    /** Smallest observation (0 when empty). */
    double min() const { return count_ ? min_ : 0.0; }

    /** Largest observation (0 when empty). */
    double max() const { return count_ ? max_ : 0.0; }

    /**
     * Quantile @p q in [0, 1] by nearest rank over the bins; returns
     * the midpoint of the containing bin (clamped to the observed
     * min/max), 0 when empty. Monotone non-decreasing in q.
     */
    double percentile(double q) const;

    /**
     * Bin index holding the nearest-rank quantile @p q (-1 when
     * empty). Because every histogram shares one bin layout, tail
     * masses defined as "observations in bins >= percentileBin(q)"
     * partition exactly across shards — the fleet tail attribution
     * reconciles per-device counts against the rollup with integer
     * equality.
     */
    int percentileBin(double q) const;

    /** Observations in bins >= @p bin (whole count when bin <= 0). */
    std::uint64_t countFromBin(int bin) const;

    /** Raw bin counts (index = binOf value; trailing bins trimmed). */
    const std::vector<std::uint64_t> &bins() const { return bins_; }

    /**
     * Export the full bin vector as one JSON object:
     * {"count": N, "min": m, "max": M, "sum": s,
     *  "bins": [[index, count], ...]} (non-zero bins only, ascending
     * index). The lossless form fleet drivers persist per device so
     * offline tools can re-merge and re-query histograms exactly.
     */
    void writeBinsJson(std::ostream &os) const;

    /**
     * Rebuild a histogram from a writeBinsJson() document (fatal on
     * malformed input). Counts, bins, min, max and percentiles round-
     * trip exactly; the rebuilt sum is the serialized (rounded) sum.
     */
    static LatencyHistogram fromBinsJson(const JsonValue &v);

    /** Heap bytes held by this histogram (bin storage). */
    std::size_t footprintBytes() const;

    /** Bin index of a value (exposed for tests). */
    static int binOf(double v);

    /** Lower edge of bin @p idx (exposed for tests). */
    static double binLo(int idx);

    /** Upper edge of bin @p idx (exposed for tests). */
    static double binHi(int idx);

    /**
     * Export as a JSON object: count, sum, min, max, mean and the
     * standard percentiles p50/p90/p99/p999.
     */
    void writeJson(std::ostream &os) const;

  private:
    std::vector<std::uint64_t> bins_;
    std::uint64_t count_ = 0;
    ExactSum sum_;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Registry of named counters and latency histograms. Names are
 * dot-separated paths ("ssd.read.queue_us"); export order is the
 * lexicographic name order, so two registries with equal content
 * serialize to equal bytes.
 *
 * Not thread-safe: accumulate per shard and merge(), or record from
 * one thread only.
 */
class MetricsRegistry
{
  public:
    /** Increment a named counter. */
    void add(const std::string &name, std::uint64_t delta = 1);

    /** Current value of a counter (0 when never incremented). */
    std::uint64_t counter(const std::string &name) const;

    /** Record an observation into a named histogram. */
    void observe(const std::string &name, double value);

    /** Histogram by name (created empty on first access). */
    LatencyHistogram &histogram(const std::string &name);

    /** Histogram lookup without creation (nullptr when absent). */
    const LatencyHistogram *findHistogram(const std::string &name) const;

    /** Merge counters and histograms of @p other into this. */
    void merge(const MetricsRegistry &other);

    /**
     * Merge @p other with every name prefixed by @p prefix — the
     * fleet rollup path ("ssd.read.latency_us" merges into
     * "fleet.ssd.read.latency_us"). Exact like merge(): merging K
     * registries in any permutation exports identical bytes.
     */
    void mergePrefixed(const MetricsRegistry &other,
                       const std::string &prefix);

    /** Approximate heap bytes held (names, counters, histograms). */
    std::size_t footprintBytes() const;

    /** All counters (name-ordered). */
    const std::map<std::string, std::uint64_t> &counters() const
    {
        return counters_;
    }

    /** All histograms (name-ordered). */
    const std::map<std::string, LatencyHistogram> &histograms() const
    {
        return histograms_;
    }

    /**
     * Export as one JSON object:
     * {"counters": {name: value, ...},
     *  "histograms": {name: {count, sum, min, max, mean,
     *                        p50, p90, p99, p999}, ...}}
     */
    void writeJson(std::ostream &os) const;

    /** writeJson() into a string. */
    std::string toJson() const;

  private:
    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, LatencyHistogram> histograms_;
};

} // namespace flash::util

#endif // SENTINELFLASH_UTIL_METRICS_HH
