/**
 * @file
 * Minimal gem5-flavoured status/error reporting.
 *
 * fatal() is for user/configuration errors the library cannot recover
 * from; panic() is for internal invariant violations (bugs). Both are
 * implemented on top of exceptions so library users and tests can
 * observe them.
 */

#ifndef SENTINELFLASH_UTIL_LOGGING_HH
#define SENTINELFLASH_UTIL_LOGGING_HH

#include <stdexcept>
#include <string>

namespace flash::util
{

/** Raised by fatal(): a configuration/usage error. */
class FatalError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Raised by panic(): an internal invariant violation. */
class PanicError : public std::logic_error
{
  public:
    using std::logic_error::logic_error;
};

/** Report an unrecoverable usage/configuration error. */
[[noreturn]] void fatal(const std::string &msg);

/** Report an internal invariant violation (a library bug). */
[[noreturn]] void panic(const std::string &msg);

/** Print a warning to stderr (does not stop execution). */
void warn(const std::string &msg);

/** Print an informational message to stderr. */
void inform(const std::string &msg);

/** fatal() when the condition holds. */
inline void
fatalIf(bool cond, const std::string &msg)
{
    if (cond)
        fatal(msg);
}

/** panic() when the condition holds. */
inline void
panicIf(bool cond, const std::string &msg)
{
    if (cond)
        panic(msg);
}

} // namespace flash::util

#endif // SENTINELFLASH_UTIL_LOGGING_HH
