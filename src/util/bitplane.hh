/**
 * @file
 * Packed bitplanes: one bit per cell in uint64_t words, with
 * popcount-based counting kernels.
 *
 * The sensing hot loops (page error counting, sentinel up/down
 * errors, state-change comparison, soft-sensing agreement) reduce to
 * boolean algebra over whole wordlines; storing one bit per cell and
 * counting with std::popcount turns byte-per-bit passes into
 * word-at-a-time kernels (64 cells per instruction).
 *
 * Invariant: bits beyond size() in the last word are always zero, so
 * every kernel may popcount whole words without masking.
 */

#ifndef SENTINELFLASH_UTIL_BITPLANE_HH
#define SENTINELFLASH_UTIL_BITPLANE_HH

#include <cstdint>
#include <vector>

namespace flash::util
{

/** Fixed-size packed bit vector (one bit per cell). */
class Bitplane
{
  public:
    Bitplane() = default;

    /** Construct with @p bits bits, all zero. */
    explicit Bitplane(std::size_t bits)
        : bits_(bits), words_((bits + 63) / 64, 0)
    {}

    /** Number of bits. */
    std::size_t size() const { return bits_; }

    /** Number of backing 64-bit words. */
    std::size_t wordCount() const { return words_.size(); }

    /** Backing words (tail bits beyond size() are zero). */
    const std::uint64_t *words() const { return words_.data(); }

    /** Mutable backing words; call maskTail() after raw writes. */
    std::uint64_t *words() { return words_.data(); }

    /** Set bit @p i to one. */
    void set(std::size_t i) { words_[i >> 6] |= 1ULL << (i & 63); }

    /** Set bit @p i to @p v. */
    void
    assign(std::size_t i, bool v)
    {
        const std::uint64_t mask = 1ULL << (i & 63);
        if (v)
            words_[i >> 6] |= mask;
        else
            words_[i >> 6] &= ~mask;
    }

    /** Bit @p i. */
    bool test(std::size_t i) const
    {
        return (words_[i >> 6] >> (i & 63)) & 1;
    }

    /** Zero every bit. */
    void clear() { words_.assign(words_.size(), 0); }

    /** Zero the tail bits beyond size() (after raw word writes). */
    void maskTail();

    /** Complement every bit in place. */
    void flip();

    /** Number of one bits. */
    std::uint64_t popcount() const;

    /** In-place XOR with @p other (equal sizes). */
    Bitplane &operator^=(const Bitplane &other);

    /** In-place OR with @p other (equal sizes). */
    Bitplane &operator|=(const Bitplane &other);

    /** In-place AND with @p other (equal sizes). */
    Bitplane &operator&=(const Bitplane &other);

    /**
     * Expand to one byte per bit (0/1) into @p out, which must hold
     * size() bytes. Word-at-a-time readout: the per-cell consumers at
     * the end of a packed pipeline (LLR mapping, result export) cost
     * less through this than through size() test() calls.
     */
    void expand(std::uint8_t *out) const;

  private:
    std::size_t bits_ = 0;
    std::vector<std::uint64_t> words_;
};

/** popcount(a ^ b): number of differing bits (equal sizes). */
std::uint64_t diffCount(const Bitplane &a, const Bitplane &b);

/** popcount(a & b) (equal sizes). */
std::uint64_t andCount(const Bitplane &a, const Bitplane &b);

/** popcount(a & ~b) (equal sizes). */
std::uint64_t andNotCount(const Bitplane &a, const Bitplane &b);

/** popcount(mask & (a ^ b)): differing bits within a mask. */
std::uint64_t maskedDiffCount(const Bitplane &mask, const Bitplane &a,
                              const Bitplane &b);

/**
 * Bit-sliced per-bit counter with 3 bit planes (values 0..7, enough
 * for the 6 extra senses of 3-bit soft sensing). Adding a plane
 * increments the counter of every bit set in it; counters saturate
 * at 7.
 */
class SlicedCounter3
{
  public:
    explicit SlicedCounter3(std::size_t bits)
        : s0_(bits), s1_(bits), s2_(bits)
    {}

    /** Add 1 to the counter of every bit set in @p plane. */
    void add(const Bitplane &plane);

    /** Counter value of bit @p i (0..7). */
    int valueAt(std::size_t i) const
    {
        return (s0_.test(i) ? 1 : 0) + (s1_.test(i) ? 2 : 0)
            + (s2_.test(i) ? 4 : 0);
    }

    /**
     * Expand every counter to one byte (0..7) into @p out, which must
     * hold as many bytes as the planes have bits. Word-at-a-time
     * readout of all three slices; the cheap way to hand the counts
     * to a per-cell consumer.
     */
    void expand(std::uint8_t *out) const;

  private:
    Bitplane s0_, s1_, s2_; // bit 0, 1, 2 of each per-bit counter
};

} // namespace flash::util

#endif // SENTINELFLASH_UTIL_BITPLANE_HH
