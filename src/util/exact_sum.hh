/**
 * @file
 * Order-invariant exact accumulation of non-negative doubles.
 *
 * An ExactSum is a fixed-point superaccumulator: the running total is
 * held as an array of 64-bit limbs covering the full finite double
 * range, and add() deposits each value's integer mantissa into the
 * limbs its exponent selects, propagating carries. Integer addition
 * is associative and commutative, so the accumulated state — and
 * therefore value(), the total rounded once back to double — is a
 * pure function of the *multiset* of added values: any insertion
 * order, any shard split, any merge() permutation produces identical
 * bits. This is what lets per-device metrics registries merge into
 * fleet rollups byte-identically regardless of evaluation order
 * (plain `double` += accumulation rounds at every step, so it is
 * order-sensitive).
 *
 * Only non-negative finite values are accepted (the latency metrics
 * clamp negatives to zero before accumulating); the limb array has
 * headroom for more than 2^63 max-double additions, so carries cannot
 * overflow the top in any realistic run.
 */

#ifndef SENTINELFLASH_UTIL_EXACT_SUM_HH
#define SENTINELFLASH_UTIL_EXACT_SUM_HH

#include <array>
#include <cstdint>

namespace flash::util
{

/** Exact, order-invariant sum of non-negative doubles. */
class ExactSum
{
  public:
    /**
     * Add one value. Negative, NaN and infinite inputs contribute
     * nothing (callers clamp before recording; see
     * LatencyHistogram::add).
     */
    void add(double v);

    /** Add another accumulator's exact total (limb-wise, exact). */
    void merge(const ExactSum &other);

    /**
     * The exact total rounded once to double: the top 128 bits of the
     * limb array, with every lower nonzero bit folded into a sticky
     * bit, converted round-to-nearest. Deterministic in the exact
     * total alone. Totals beyond the double range return +inf.
     */
    double value() const;

    /** Whether nothing (or only zeros) has been added. */
    bool zero() const;

  private:
    /** Limb k carries weight 2^(64k - kBiasBits). */
    static constexpr int kBiasBits = 1152;

    /**
     * Bit positions span [-1152, 64*kLimbs - 1152). The smallest
     * mantissa bit of any finite double sits at 2^-1074 >= 2^-1152;
     * the largest double is < 2^1024, so sums stay below 2^1088 until
     * ~2^64 additions of the maximum double — limb 36 tops out at
     * 2^1152, leaving > 2^63 of headroom.
     */
    static constexpr int kLimbs = 36;

    void addAt(int limb, std::uint64_t v);

    std::array<std::uint64_t, kLimbs> limbs_{};
};

/**
 * Exact, order-invariant sum of doubles of either sign: a pair of
 * ExactSum accumulators (positive and negative magnitudes). The pair
 * state is a pure function of the multiset of added values, so any
 * insertion order or merge() permutation produces identical state.
 * value() rounds each side once and subtracts — one more rounding
 * than a single-sided ExactSum, but still deterministic in the
 * multiset alone, which is the property the online least-squares
 * moments need (features and offsets can be negative).
 */
class SignedExactSum
{
  public:
    /** Add one value (NaN and infinite inputs contribute nothing). */
    void add(double v);

    /** Add another accumulator's exact totals (limb-wise, exact). */
    void merge(const SignedExactSum &other);

    /** Positive total minus negative total, each exactly rounded. */
    double value() const;

    /** Whether nothing (or only zeros) has been added. */
    bool zero() const;

  private:
    ExactSum pos_;
    ExactSum neg_;
};

} // namespace flash::util

#endif // SENTINELFLASH_UTIL_EXACT_SUM_HH
