#include "util/thread_pool.hh"

#include <algorithm>

#include "util/logging.hh"

namespace flash::util
{

int
hardwareThreads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n ? static_cast<int>(n) : 1;
}

ThreadPool::ThreadPool(int threads) : threads_(threads)
{
    fatalIf(threads < 1, "ThreadPool: thread count must be >= 1");
    errors_.resize(static_cast<std::size_t>(threads_));
    workers_.reserve(static_cast<std::size_t>(threads_ - 1));
    for (int w = 1; w < threads_; ++w)
        workers_.emplace_back([this, w] { workerLoop(w); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &t : workers_)
        t.join();
}

void
ThreadPool::runChunk(int chunk, int chunks) const
{
    const int per = (n_ + chunks - 1) / chunks;
    const int begin = chunk * per;
    const int end = std::min(n_, begin + per);
    for (int i = begin; i < end; ++i)
        (*fn_)(i);
}

void
ThreadPool::workerLoop(int worker)
{
    std::uint64_t seen = 0;
    for (;;) {
        int chunks;
        {
            std::unique_lock<std::mutex> lock(mu_);
            wake_.wait(lock,
                       [&] { return stop_ || epoch_ != seen; });
            if (stop_)
                return;
            seen = epoch_;
            chunks = chunks_;
        }
        if (worker < chunks) {
            try {
                runChunk(worker, chunks);
            } catch (...) {
                errors_[static_cast<std::size_t>(worker)] =
                    std::current_exception();
            }
        }
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (--pending_ == 0)
                done_.notify_all();
        }
    }
}

void
ThreadPool::parallelFor(int n, const std::function<void(int)> &fn)
{
    fatalIf(n < 0, "ThreadPool: negative iteration count");
    if (n == 0)
        return;
    const int chunks = std::min(threads_, n);
    if (chunks == 1) {
        for (int i = 0; i < n; ++i)
            fn(i);
        return;
    }

    {
        std::lock_guard<std::mutex> lock(mu_);
        fn_ = &fn;
        n_ = n;
        chunks_ = chunks;
        std::fill(errors_.begin(), errors_.end(), std::exception_ptr());
        pending_ = threads_ - 1;
        ++epoch_;
    }
    wake_.notify_all();

    // The caller is thread 0.
    try {
        runChunk(0, chunks);
    } catch (...) {
        errors_[0] = std::current_exception();
    }

    {
        std::unique_lock<std::mutex> lock(mu_);
        done_.wait(lock, [&] { return pending_ == 0; });
        fn_ = nullptr;
    }
    for (auto &e : errors_) {
        if (e)
            std::rethrow_exception(e);
    }
}

void
parallelFor(int threads, int n, const std::function<void(int)> &fn)
{
    if (threads <= 1 || n <= 1) {
        for (int i = 0; i < n; ++i)
            fn(i);
        return;
    }
    ThreadPool pool(threads);
    pool.parallelFor(n, fn);
}

} // namespace flash::util
