/**
 * @file
 * Fixed-bin integer histogram with prefix sums.
 *
 * The chip model bins sensed threshold voltages (in DAC units) into
 * per-state histograms; error counts for any candidate read voltage
 * are then answered with two prefix-sum lookups instead of a pass over
 * the cells.
 */

#ifndef SENTINELFLASH_UTIL_HISTOGRAM_HH
#define SENTINELFLASH_UTIL_HISTOGRAM_HH

#include <cstdint>
#include <vector>

namespace flash::util
{

/**
 * Histogram over integer values in [lo, hi] with unit-width bins.
 * Values outside the range are clamped into the edge bins, which is
 * the behaviour the Vth model wants (a cell far in a tail is still a
 * cell on that side of every threshold).
 */
class Histogram
{
  public:
    /** Construct a histogram covering [lo, hi] inclusive. */
    Histogram(int lo, int hi);

    /** Add one observation (clamped into range). */
    void add(int value);

    /** Add a batch of observations. */
    void add(const std::vector<int> &values);

    /** Lowest representable value. */
    int lo() const { return lo_; }

    /** Highest representable value. */
    int hi() const { return hi_; }

    /** Total number of observations. */
    std::uint64_t total() const { return total_; }

    /** Count in the bin for @p value (clamped). */
    std::uint64_t binCount(int value) const;

    /**
     * Number of observations with value <= v. Values below lo() give
     * 0; values above hi() give total().
     */
    std::uint64_t countAtOrBelow(int v) const;

    /** Number of observations with value > v. */
    std::uint64_t countAbove(int v) const { return total_ - countAtOrBelow(v); }

    /** Mean of the recorded observations (clamped values). */
    double mean() const;

  private:
    void ensurePrefix() const;

    int lo_;
    int hi_;
    std::uint64_t total_ = 0;
    std::vector<std::uint64_t> bins_;
    // Lazily rebuilt inclusive prefix sums.
    mutable std::vector<std::uint64_t> prefix_;
    mutable bool prefixValid_ = false;
};

} // namespace flash::util

#endif // SENTINELFLASH_UTIL_HISTOGRAM_HH
