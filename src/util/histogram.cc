#include "util/histogram.hh"

#include <algorithm>
#include <numeric>

#include "util/logging.hh"

namespace flash::util
{

Histogram::Histogram(int lo, int hi) : lo_(lo), hi_(hi)
{
    fatalIf(hi < lo, "Histogram: hi < lo");
    bins_.assign(static_cast<std::size_t>(hi - lo + 1), 0);
}

void
Histogram::add(int value)
{
    const int clamped = std::clamp(value, lo_, hi_);
    ++bins_[static_cast<std::size_t>(clamped - lo_)];
    ++total_;
    prefixValid_ = false;
}

void
Histogram::add(const std::vector<int> &values)
{
    for (int v : values)
        add(v);
}

std::uint64_t
Histogram::binCount(int value) const
{
    const int clamped = std::clamp(value, lo_, hi_);
    return bins_[static_cast<std::size_t>(clamped - lo_)];
}

void
Histogram::ensurePrefix() const
{
    if (prefixValid_)
        return;
    prefix_.resize(bins_.size());
    std::partial_sum(bins_.begin(), bins_.end(), prefix_.begin());
    prefixValid_ = true;
}

std::uint64_t
Histogram::countAtOrBelow(int v) const
{
    if (v < lo_)
        return 0;
    if (v >= hi_)
        return total_;
    ensurePrefix();
    return prefix_[static_cast<std::size_t>(v - lo_)];
}

double
Histogram::mean() const
{
    if (total_ == 0)
        return 0.0;
    double acc = 0.0;
    for (std::size_t i = 0; i < bins_.size(); ++i)
        acc += static_cast<double>(bins_[i]) * (lo_ + static_cast<int>(i));
    return acc / static_cast<double>(total_);
}

} // namespace flash::util
