#include "util/trace_log.hh"

#include "util/metrics.hh"

namespace flash::util
{

void
TraceLog::event(const char *type, std::initializer_list<NumField> nums)
{
    event(type, {}, nums);
}

void
TraceLog::event(const char *type, std::initializer_list<StrField> strs,
                std::initializer_list<NumField> nums)
{
    if (maxEvents_ != 0 && events_ >= maxEvents_) {
        ++dropped_;
        return;
    }
    *os_ << "{\"event\": \"" << jsonEscape(type) << '"';
    for (const auto &[key, value] : strs)
        *os_ << ", \"" << jsonEscape(key) << "\": \"" << jsonEscape(value)
             << '"';
    for (const auto &[key, value] : nums) {
        *os_ << ", \"" << jsonEscape(key) << "\": ";
        writeJsonValue(*os_, value);
    }
    *os_ << "}\n";
    ++events_;
}

} // namespace flash::util
