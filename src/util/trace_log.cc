#include "util/trace_log.hh"

#include <cmath>

#include "util/metrics.hh"

namespace flash::util
{

void
TraceLog::event(const char *type, std::initializer_list<NumField> nums)
{
    event(type, {}, nums);
}

void
TraceLog::event(const char *type, std::initializer_list<StrField> strs,
                std::initializer_list<NumField> nums)
{
    *os_ << "{\"event\": \"" << jsonEscape(type) << '"';
    for (const auto &[key, value] : strs)
        *os_ << ", \"" << jsonEscape(key) << "\": \"" << jsonEscape(value)
             << '"';
    for (const auto &[key, value] : nums) {
        *os_ << ", \"" << jsonEscape(key) << "\": ";
        // Integral values print without an exponent/decimal point so
        // counts stay greppable.
        if (value == std::floor(value) && std::abs(value) < 1e15) {
            *os_ << static_cast<long long>(value);
        } else {
            *os_ << jsonNumber(value);
        }
    }
    *os_ << "}\n";
    ++events_;
}

} // namespace flash::util
