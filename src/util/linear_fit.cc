#include "util/linear_fit.hh"

#include <cmath>

#include "util/logging.hh"

namespace flash::util
{

LinearFit
linearFit(const std::vector<double> &x, const std::vector<double> &y)
{
    fatalIf(x.size() != y.size(), "linearFit: size mismatch");
    fatalIf(x.size() < 2, "linearFit: need at least two samples");

    const double n = static_cast<double>(x.size());
    double sx = 0.0, sy = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        sx += x[i];
        sy += y[i];
    }
    const double mx = sx / n;
    const double my = sy / n;

    double sxx = 0.0, sxy = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double dx = x[i] - mx;
        const double dy = y[i] - my;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    fatalIf(sxx < 1e-12, "linearFit: degenerate x values");

    LinearFit fit;
    fit.slope = sxy / sxx;
    fit.intercept = my - fit.slope * mx;
    fit.n = x.size();
    if (syy > 1e-12) {
        double ss_res = 0.0;
        for (std::size_t i = 0; i < x.size(); ++i) {
            const double r = y[i] - fit(x[i]);
            ss_res += r * r;
        }
        fit.r2 = 1.0 - ss_res / syy;
    } else {
        fit.r2 = 1.0;
    }
    return fit;
}

} // namespace flash::util
