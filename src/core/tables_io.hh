/**
 * @file
 * Serialization of the factory characterization tables.
 *
 * The paper programs the fitted relationships into every chip of a
 * batch (III-D): one d -> Vopt table plus one cross-voltage
 * correlation table per temperature band. This module persists a
 * band set to a small line-oriented text format, so a real FTL (or a
 * later simulation run) can load the tables instead of re-running the
 * characterization sweep.
 *
 * Format (one record per line, '#' comments allowed):
 *
 *   sentinelflash-tables v1
 *   bands <n>
 *   band <tempC> <sentinelBoundary> <samples> <dFitRmse>
 *   poly <degree> <xShift> <xScale> <c0> <c1> ...
 *   cross <k> <slope> <intercept> <r2> <n>     (one per boundary)
 *   end
 */

#ifndef SENTINELFLASH_CORE_TABLES_IO_HH
#define SENTINELFLASH_CORE_TABLES_IO_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "core/characterization.hh"

namespace flash::core
{

/** Write a band set to a stream. */
void saveTables(std::ostream &os,
                const std::vector<Characterization> &bands);

/** Write a band set to a file (fatal on I/O errors). */
void saveTablesFile(const std::string &path,
                    const std::vector<Characterization> &bands);

/**
 * Read a band set from a stream. Raw fit samples are not persisted
 * (they are characterization-time debugging data), so `dSamples` /
 * `voptSamples` come back empty.
 */
std::vector<Characterization> loadTables(std::istream &is);

/** Read a band set from a file (fatal on I/O or parse errors). */
std::vector<Characterization> loadTablesFile(const std::string &path);

} // namespace flash::core

#endif // SENTINELFLASH_CORE_TABLES_IO_HH
