#include "core/calibration.hh"

#include "util/logging.hh"

namespace flash::core
{

namespace
{

/** Shared decision rule of both observeStateChange overloads. */
void
decide(CalibrationObservation &obs, double two_state_data,
       std::uint64_t sent_cells, double match_tolerance)
{
    const double scale = two_state_data / static_cast<double>(sent_cells);
    obs.scaledNcs = static_cast<double>(obs.ncs) * scale;
    const double nca = static_cast<double>(obs.nca);
    obs.tuneFurther = nca > obs.scaledNcs;
    if (nca > obs.scaledNcs * (1.0 + match_tolerance))
        obs.decision = CalibrationCase::TuneFurther;
    else if (nca < obs.scaledNcs * (1.0 - match_tolerance))
        obs.decision = CalibrationCase::TuneBack;
    else
        obs.decision = CalibrationCase::Converged;
}

} // namespace

CalibrationObservation
observeStateChange(const nand::WordlineSnapshot &data,
                   const nand::WordlineSnapshot &sent, int k, int v_default,
                   int v_infer, double match_tolerance)
{
    util::fatalIf(sent.cells() == 0 || data.cells() == 0,
                  "calibration: empty snapshot");

    CalibrationObservation obs;
    obs.nca = data.cellsInVthRange(v_default, v_infer);
    obs.ncs = sent.cellsInVthRange(v_default, v_infer);
    // Sentinels live entirely in states k-1 and k; scale them to the
    // data region's population of those two states.
    const double two_state_data =
        static_cast<double>(data.cellsInState(k - 1))
        + static_cast<double>(data.cellsInState(k));
    decide(obs, two_state_data, sent.cells(), match_tolerance);
    return obs;
}

CalibrationObservation
observeStateChange(const nand::WordlineVthView &data,
                   const std::vector<int> &data_dac,
                   const nand::WordlineVthView &sent,
                   const std::vector<int> &sent_dac, int k, int v_default,
                   int v_infer, double match_tolerance)
{
    util::fatalIf(sent.cells() == 0 || data.cells() == 0,
                  "calibration: empty view");

    CalibrationObservation obs;
    obs.nca = data.cellsInDacRange(data_dac, v_default, v_infer);
    obs.ncs = sent.cellsInDacRange(sent_dac, v_default, v_infer);
    const double two_state_data =
        static_cast<double>(data.cellsInState(k - 1))
        + static_cast<double>(data.cellsInState(k));
    decide(obs, two_state_data, sent.cells(), match_tolerance);
    return obs;
}

int
calibratedOffset(int current_offset, bool tune_further, double d_rate,
                 int delta)
{
    int dir;
    if (current_offset != 0)
        dir = current_offset > 0 ? 1 : -1;
    else
        dir = d_rate >= 0.0 ? 1 : -1;
    return current_offset + (tune_further ? dir : -dir) * delta;
}

} // namespace flash::core
