#include "core/voltage_model.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.hh"

namespace flash::core
{

namespace
{

/** Upper-triangle index of moment (i, j), i <= j. */
constexpr int
triIndex(int i, int j)
{
    return i * 4 - i * (i - 1) / 2 + (j - i);
}

} // namespace

void
VoltageModelConfig::validate() const
{
    util::fatalIf(chunkBlocks < 1, "VoltageModelConfig: bad chunk size");
    util::fatalIf(std::isnan(confidenceThreshold)
                      || confidenceThreshold < 0.0
                      || confidenceThreshold > 1.0,
                  "VoltageModelConfig: confidence threshold out of [0, 1]");
    util::fatalIf(minSamples < 1, "VoltageModelConfig: bad min samples");
    util::fatalIf(!(ridgeLambda > 0.0) || std::isnan(ridgeLambda),
                  "VoltageModelConfig: non-positive ridge");
    util::fatalIf(maxOffsetDac < 1, "VoltageModelConfig: bad offset clamp");
    util::fatalIf(!(confSamples > 0.0) || !(confSigmaDac > 0.0),
                  "VoltageModelConfig: bad confidence scales");
}

VoltagePredictor::VoltagePredictor(VoltageModelConfig config)
    : config_(config)
{
    config_.validate();
}

void
VoltagePredictor::features(const BlockEpoch &epoch, double (&x)[kFeatures])
{
    // Scaled so every feature is O(1) over the benches' aging ranges:
    // the ridge then shrinks all weights comparably and the solve
    // stays well-conditioned without per-chunk normalization state.
    x[0] = 1.0;
    x[1] = static_cast<double>(epoch.peCycles) / 1000.0;
    x[2] = std::log1p(std::max(0.0, epoch.retentionHours));
    x[3] = (epoch.retentionTempC - 25.0) / 10.0;
}

void
VoltagePredictor::observe(int block, const BlockEpoch &epoch,
                          int sentinel_offset)
{
    double x[kFeatures];
    features(epoch, x);
    const double y = static_cast<double>(sentinel_offset);

    std::lock_guard<std::mutex> lock(mutex_);
    Chunk &chunk = chunks_[chunkOf(block)];
    ++chunk.n;
    for (int i = 0; i < kFeatures; ++i) {
        for (int j = i; j < kFeatures; ++j)
            chunk.xtx[triIndex(i, j)].add(x[i] * x[j]);
        chunk.xty[i].add(x[i] * y);
    }
    chunk.yy.add(y * y);
    chunk.solved = false;
    ++stats_.observes;
}

void
VoltagePredictor::solveChunk(Chunk &chunk) const
{
    // Ridge normal equations (XtX + lambda I) w = Xty on the exactly-
    // rounded moments; 4x4 Gaussian elimination, partial pivoting.
    double a[kFeatures][kFeatures + 1];
    for (int i = 0; i < kFeatures; ++i) {
        for (int j = 0; j < kFeatures; ++j) {
            a[i][j] =
                chunk.xtx[triIndex(std::min(i, j), std::max(i, j))].value();
        }
        a[i][i] += config_.ridgeLambda;
        a[i][kFeatures] = chunk.xty[i].value();
    }
    for (int col = 0; col < kFeatures; ++col) {
        int pivot = col;
        for (int r = col + 1; r < kFeatures; ++r) {
            if (std::fabs(a[r][col]) > std::fabs(a[pivot][col]))
                pivot = r;
        }
        if (pivot != col) {
            for (int c = col; c <= kFeatures; ++c)
                std::swap(a[col][c], a[pivot][c]);
        }
        // The ridge keeps the matrix positive definite, so the pivot
        // is bounded below by lambda; no singular branch needed.
        for (int r = col + 1; r < kFeatures; ++r) {
            const double f = a[r][col] / a[col][col];
            for (int c = col; c <= kFeatures; ++c)
                a[r][c] -= f * a[col][c];
        }
    }
    for (int i = kFeatures - 1; i >= 0; --i) {
        double v = a[i][kFeatures];
        for (int j = i + 1; j < kFeatures; ++j)
            v -= a[i][j] * chunk.w[j];
        chunk.w[i] = v / a[i][i];
    }

    // SSE = yy - 2 w.Xty + w.XtX.w, evaluated from the same moments.
    double sse = chunk.yy.value();
    for (int i = 0; i < kFeatures; ++i) {
        sse -= 2.0 * chunk.w[i] * chunk.xty[i].value();
        for (int j = 0; j < kFeatures; ++j) {
            sse += chunk.w[i] * chunk.w[j]
                * chunk.xtx[triIndex(std::min(i, j), std::max(i, j))]
                      .value();
        }
    }
    const double n = static_cast<double>(chunk.n);
    chunk.residualStd = n > 0.0 ? std::sqrt(std::max(0.0, sse) / n) : 0.0;
    // Confidence gates on the standard error of the *predicted mean*
    // (residual / sqrt(n)), not the raw residual: wordline-to-wordline
    // scatter inside a chunk is irreducible noise for a chunk-level
    // predictor, and the gated fast path only needs the mean offset —
    // exactly what the voltage cache replays without any gate at all.
    const double se = n > 0.0 ? chunk.residualStd / std::sqrt(n) : 0.0;
    chunk.conf = (n / (n + config_.confSamples))
        / (1.0 + se / config_.confSigmaDac);
    chunk.solved = true;
}

VoltagePrediction
VoltagePredictor::predictLocked(const Chunk *chunk, const BlockEpoch &epoch,
                                bool use_cache) const
{
    VoltagePrediction out;
    if (chunk == nullptr || chunk->n == 0)
        return out;

    Chunk fresh;
    const Chunk *solved = chunk;
    if (use_cache) {
        if (!chunk->solved)
            solveChunk(const_cast<Chunk &>(*chunk));
    } else {
        fresh = *chunk;
        fresh.solved = false;
        solveChunk(fresh);
        solved = &fresh;
    }

    double x[kFeatures];
    features(epoch, x);
    double y = 0.0;
    for (int i = 0; i < kFeatures; ++i)
        y += solved->w[i] * x[i];
    const double clamp = static_cast<double>(config_.maxOffsetDac);
    out.predicted = std::clamp(y, -clamp, clamp);
    out.sentinelOffset = static_cast<int>(std::lround(out.predicted));
    out.residualStd = solved->residualStd;
    out.confidence = solved->conf;
    out.samples = solved->n;
    out.confident = solved->n >= config_.minSamples
        && solved->conf >= config_.confidenceThreshold;
    return out;
}

VoltagePrediction
VoltagePredictor::predict(int block, const BlockEpoch &epoch) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.predicts;
    const auto it = chunks_.find(chunkOf(block));
    return predictLocked(it == chunks_.end() ? nullptr : &it->second,
                         epoch, true);
}

VoltagePrediction
VoltagePredictor::predictFresh(int block, const BlockEpoch &epoch) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.predicts;
    const auto it = chunks_.find(chunkOf(block));
    return predictLocked(it == chunks_.end() ? nullptr : &it->second,
                         epoch, false);
}

double
VoltagePredictor::confidence(int block) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = chunks_.find(chunkOf(block));
    if (it == chunks_.end() || it->second.n == 0)
        return 0.0;
    if (!it->second.solved)
        solveChunk(it->second);
    return it->second.conf;
}

bool
VoltagePredictor::confidentBlock(int block) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = chunks_.find(chunkOf(block));
    if (it == chunks_.end() || it->second.n < config_.minSamples)
        return false;
    if (!it->second.solved)
        solveChunk(it->second);
    return it->second.conf >= config_.confidenceThreshold;
}

void
VoltagePredictor::noteFastAttempt()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.fastAttempts;
}

void
VoltagePredictor::noteFastHit()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.fastHits;
}

void
VoltagePredictor::noteFastMiss()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.fastMisses;
}

void
VoltagePredictor::noteLowConfidence()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.lowConfidence;
}

std::size_t
VoltagePredictor::chunks() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return chunks_.size();
}

double
VoltagePredictor::meanConfidence() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (chunks_.empty())
        return 0.0;
    double sum = 0.0;
    for (auto &kv : chunks_) {
        if (!kv.second.solved)
            solveChunk(kv.second);
        sum += kv.second.conf;
    }
    return sum / static_cast<double>(chunks_.size());
}

double
VoltagePredictor::confidentFraction() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (chunks_.empty())
        return 0.0;
    int confident = 0;
    for (auto &kv : chunks_) {
        if (!kv.second.solved)
            solveChunk(kv.second);
        if (kv.second.n >= config_.minSamples
            && kv.second.conf >= config_.confidenceThreshold)
            ++confident;
    }
    return static_cast<double>(confident)
        / static_cast<double>(chunks_.size());
}

VoltagePredictor::Stats
VoltagePredictor::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void
VoltagePredictor::exportMetrics(util::MetricsRegistry &metrics) const
{
    const Stats s = stats();
    metrics.add("model.chunks", chunks());
    metrics.add("model.fast_attempt", s.fastAttempts);
    metrics.add("model.fast_hit", s.fastHits);
    metrics.add("model.fast_miss", s.fastMisses);
    metrics.add("model.low_confidence", s.lowConfidence);
    metrics.add("model.observe", s.observes);
    metrics.add("model.predict", s.predicts);
}

std::size_t
VoltagePredictor::footprintBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    // std::map nodes carry three pointers + color next to the payload.
    return sizeof(*this)
        + chunks_.size()
        * (sizeof(std::pair<const int, Chunk>) + 4 * sizeof(void *));
}

void
VoltagePredictor::writeStateJson(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    os << "{\"observes\": " << stats_.observes << ", \"chunks\": [";
    bool first = true;
    for (auto &kv : chunks_) {
        if (!kv.second.solved)
            solveChunk(kv.second);
        const Chunk &c = kv.second;
        os << (first ? "" : ", ") << "{\"id\": " << kv.first
           << ", \"n\": " << c.n << ", \"w\": [";
        for (int i = 0; i < kFeatures; ++i) {
            os << (i ? ", " : "");
            util::writeJsonValue(os, c.w[i]);
        }
        os << "], \"residual_std\": ";
        util::writeJsonValue(os, c.residualStd);
        os << ", \"confidence\": ";
        util::writeJsonValue(os, c.conf);
        os << '}';
        first = false;
    }
    os << "]}";
}

std::string
VoltagePredictor::stateJson() const
{
    std::ostringstream os;
    writeStateJson(os);
    return os.str();
}

} // namespace flash::core
