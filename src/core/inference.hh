/**
 * @file
 * Optimal read-voltage inference from the sentinel error difference
 * (paper III-B).
 */

#ifndef SENTINELFLASH_CORE_INFERENCE_HH
#define SENTINELFLASH_CORE_INFERENCE_HH

#include <vector>

#include "core/characterization.hh"

namespace flash::core
{

/** Voltages produced by one inference. */
struct InferredVoltages
{
    /** Absolute voltages, indexed by boundary (1-based). */
    std::vector<int> voltages;

    /** Inferred offset of the sentinel voltage. */
    int sentinelOffset = 0;

    /** Error-difference rate the inference was based on. */
    double dRate = 0.0;
};

/**
 * Applies the factory tables: d -> sentinel offset (polynomial),
 * sentinel offset -> all other offsets (linear correlations).
 */
class InferenceEngine
{
  public:
    /**
     * @param tables Factory characterization (of the right band).
     * @param defaults Default voltages, indexed 1-based.
     */
    InferenceEngine(const Characterization &tables,
                    std::vector<int> defaults);

    /** Infer all voltages from a measured error-difference rate. */
    InferredVoltages infer(double d_rate) const;

    /**
     * Recompute all voltages for a given (e.g. calibrated) sentinel
     * offset.
     */
    InferredVoltages inferAt(int sentinel_offset) const;

    /** The sentinel boundary index. */
    int sentinelBoundary() const { return tables_->sentinelBoundary; }

    /** The default voltages. */
    const std::vector<int> &defaults() const { return defaults_; }

  private:
    const Characterization *tables_;
    std::vector<int> defaults_;
};

} // namespace flash::core

#endif // SENTINELFLASH_CORE_INFERENCE_HH
