/**
 * @file
 * Online predictive read-voltage model.
 *
 * The per-block VoltageCache (PR 3) is reactive: it replays the last
 * verified sentinel offset of one block under one aging epoch and
 * must miss on any new block or epoch. This module learns instead: a
 * VoltagePredictor keeps, per *chunk* of neighbouring blocks, the
 * running moments of an online least-squares regression of the
 * sentinel offset over aging features — P/E count, retention dwell
 * and storage temperature (the HeatWatch observation from Luo et al.,
 * arXiv 1808.04016) — fed by every successful sentinel inference and
 * every background scrub probe. At read time a closed-form solve of
 * the 4x4 ridge normal equations yields the predicted offset plus a
 * confidence derived from the residual variance and sample count;
 * when confidence clears the configured threshold, SentinelPolicy
 * issues the read directly at the predicted offset with **no assist
 * sense**, falling back to the normal assist path only if that
 * attempt fails to decode.
 *
 * Determinism: the moments are util::SignedExactSum /
 * util::ExactSum superaccumulators, so the model state — and every
 * prediction solved from it — is a pure function of the *multiset*
 * of observations: any observation order, any shard merge order,
 * any thread count produces byte-identical state and predictions.
 * The solver is plain deterministic double arithmetic (Gaussian
 * elimination with partial pivoting) on those exactly-rounded
 * moments.
 *
 * Thread-safe (internally locked) like VoltageCache, with the same
 * caveat: a model attached to concurrently-evaluated read sessions
 * makes results depend on completion order, so deterministic
 * harnesses attach one only to serial (threads=1) runs. Strictly
 * opt-in — no policy consults a model unless explicitly attached.
 */

#ifndef SENTINELFLASH_CORE_VOLTAGE_MODEL_HH
#define SENTINELFLASH_CORE_VOLTAGE_MODEL_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>

#include "core/voltage_cache.hh"
#include "util/exact_sum.hh"
#include "util/metrics.hh"

namespace flash::core
{

/** Knobs of the predictive voltage model. */
struct VoltageModelConfig
{
    /**
     * Blocks pooled per regression chunk. Neighbouring blocks share
     * process variation, so pooling them multiplies the sample count
     * behind each fit; 1 learns strictly per block.
     */
    int chunkBlocks = 4;

    /** Confidence a prediction needs to gate the assist-free read. */
    double confidenceThreshold = 0.5;

    /** Observations a chunk needs before any prediction may gate. */
    std::uint64_t minSamples = 3;

    /**
     * Ridge regularizer added to the normal-equation diagonal. Keeps
     * the solve well-posed when a chunk's observations share one
     * aging epoch (rank-deficient moments), where the fit degrades
     * gracefully toward the shrunk chunk-mean offset.
     */
    double ridgeLambda = 1e-3;

    /** Predictions clamp to +/- this many DAC steps. */
    int maxOffsetDac = 192;

    /** Sample count at which the confidence prior stops dominating. */
    double confSamples = 4.0;

    /**
     * Standard error of the predicted mean offset (residual /
     * sqrt(n), DAC steps) at which confidence halves. The gate keys
     * on how precisely the chunk mean is known, not on the chunk's
     * irreducible wordline-to-wordline scatter.
     */
    double confSigmaDac = 2.0;

    /** Reject nonsensical knob combinations (fatal). */
    void validate() const;
};

/** One closed-form prediction. */
struct VoltagePrediction
{
    /** Predicted sentinel offset, rounded to the DAC grid. */
    int sentinelOffset = 0;

    /** Unrounded regression output (clamped). */
    double predicted = 0.0;

    /** Confidence in [0, 1): grows with samples, shrinks with residual. */
    double confidence = 0.0;

    /** Residual standard deviation of the chunk's fit (DAC steps). */
    double residualStd = 0.0;

    /** Observations behind the fit. */
    std::uint64_t samples = 0;

    /** Whether this prediction clears the gating threshold. */
    bool confident = false;
};

/**
 * Deterministic online least-squares predictor of sentinel offsets.
 * See the file comment for the learning model and the determinism
 * argument.
 */
class VoltagePredictor
{
  public:
    /** Lifetime counters (exported as "model.*" metrics). */
    struct Stats
    {
        std::uint64_t observes = 0;      ///< observations ingested
        std::uint64_t predicts = 0;      ///< predictions solved
        std::uint64_t fastAttempts = 0;  ///< gated assist-free attempts
        std::uint64_t fastHits = 0;      ///< ... that decoded
        std::uint64_t fastMisses = 0;    ///< ... that fell back
        std::uint64_t lowConfidence = 0; ///< predictions below the gate
    };

    explicit VoltagePredictor(VoltageModelConfig config = {});

    const VoltageModelConfig &config() const { return config_; }

    /**
     * Ingest one verified (epoch, offset) observation of @p block —
     * a successful sentinel inference/calibration or a scrub probe.
     */
    void observe(int block, const BlockEpoch &epoch, int sentinel_offset);

    /**
     * Closed-form prediction for @p block under @p epoch. Solves the
     * chunk's normal equations (cached until the next observe) and
     * evaluates them at the epoch's features. A chunk with no
     * observations predicts offset 0 at confidence 0.
     */
    VoltagePrediction predict(int block, const BlockEpoch &epoch) const;

    /**
     * Same prediction, bypassing the cached solve (every call pays
     * the full elimination). Identical result bit-for-bit; exists so
     * the microbench can time cached vs uncached honestly.
     */
    VoltagePrediction predictFresh(int block,
                                   const BlockEpoch &epoch) const;

    /**
     * Confidence of @p block's chunk (epoch-independent — residual
     * variance and sample count only). Cheap enough for the
     * scrubber's per-scan uncertainty ordering.
     */
    double confidence(int block) const;

    /** Whether @p block's chunk clears the gating threshold. */
    bool confidentBlock(int block) const;

    /** Outcome counters of the policy's gated fast path. */
    void noteFastAttempt();
    void noteFastHit();
    void noteFastMiss();
    void noteLowConfidence();

    /** Chunks holding at least one observation. */
    std::size_t chunks() const;

    /** Mean chunk confidence (0 when no chunk has data). */
    double meanConfidence() const;

    /** Fraction of chunks clearing the gating threshold. */
    double confidentFraction() const;

    /** Counter snapshot. */
    Stats stats() const;

    /**
     * Add the counters to a metrics registry as model.observe,
     * model.predict, model.fast_attempt, model.fast_hit,
     * model.fast_miss, model.low_confidence and model.chunks.
     */
    void exportMetrics(util::MetricsRegistry &metrics) const;

    /** Heap + object bytes of the model state. */
    std::size_t footprintBytes() const;

    /**
     * Serialize the solved model state (chunk-id order: sample
     * counts, weights, residuals, confidences) as one JSON object.
     * Byte-identical for identical observation multisets — the
     * determinism tests and the fleet byte-identity gate diff it.
     */
    void writeStateJson(std::ostream &os) const;

    /** writeStateJson() into a string. */
    std::string stateJson() const;

  private:
    static constexpr int kFeatures = 4;

    /**
     * Exact running moments and the (lazily) solved fit of one chunk.
     * The moments are the canonical state; everything under `solved`
     * is a cache of the deterministic solve over them.
     */
    struct Chunk
    {
        std::uint64_t n = 0;
        util::SignedExactSum xtx[kFeatures * (kFeatures + 1) / 2];
        util::SignedExactSum xty[kFeatures];
        util::ExactSum yy; ///< sum of squared offsets (non-negative)

        bool solved = false;
        double w[kFeatures] = {0.0, 0.0, 0.0, 0.0};
        double residualStd = 0.0;
        double conf = 0.0;
    };

    int chunkOf(int block) const { return block / config_.chunkBlocks; }
    static void features(const BlockEpoch &epoch,
                         double (&x)[kFeatures]);
    void solveChunk(Chunk &chunk) const;
    VoltagePrediction predictLocked(const Chunk *chunk,
                                    const BlockEpoch &epoch,
                                    bool use_cache) const;

    VoltageModelConfig config_;
    mutable std::mutex mutex_;
    /** Ordered by chunk id so serialization has one canonical order. */
    mutable std::map<int, Chunk> chunks_;
    mutable Stats stats_;
};

} // namespace flash::core

#endif // SENTINELFLASH_CORE_VOLTAGE_MODEL_HH
