#include "core/policy_metrics.hh"

#include <fstream>

#include "util/logging.hh"

namespace flash::core
{

std::vector<PolicyMetricsRun>
collectPolicyMetrics(const nand::Chip &chip, int block,
                     const std::vector<const ReadPolicy *> &policies,
                     const ecc::EccModel &ecc_model,
                     const std::optional<nand::SentinelOverlay> &overlay,
                     const LatencyParams &latency, int page, int wl_stride,
                     int threads, std::uint64_t read_stream)
{
    std::vector<PolicyMetricsRun> runs;
    runs.reserve(policies.size());
    for (const ReadPolicy *policy : policies) {
        util::fatalIf(!policy, "collectPolicyMetrics: null policy");
        PolicyBlockStats stats =
            evaluateBlock(chip, block, *policy, ecc_model, overlay, latency,
                          page, wl_stride, threads, read_stream);
        runs.push_back({policy->name(), std::move(stats.metrics)});
    }
    return runs;
}

void
writePolicyMetricsJson(std::ostream &os,
                       const std::vector<PolicyMetricsRun> &runs)
{
    os << "{\"policies\": {";
    bool first = true;
    for (const auto &run : runs) {
        if (!first)
            os << ", ";
        first = false;
        os << '"' << util::jsonEscape(run.policy) << "\": ";
        run.metrics.writeJson(os);
    }
    os << "}}\n";
}

void
savePolicyMetricsJson(const std::string &path,
                      const std::vector<PolicyMetricsRun> &runs)
{
    std::ofstream out(path);
    util::fatalIf(!out, "metrics-out: cannot open " + path);
    writePolicyMetricsJson(out, runs);
    util::inform("metrics written to " + path);
}

} // namespace flash::core
