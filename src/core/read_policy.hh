/**
 * @file
 * Read-retry policies: the proposed sentinel scheme and the baselines
 * it is evaluated against.
 *
 * A policy drives one page-read session: initial read at some voltage
 * set, then retries with re-tuned voltages until the page decodes or
 * the retry budget is exhausted. Policies are compared on retry
 * counts, total sense operations and derived latency.
 */

#ifndef SENTINELFLASH_CORE_READ_POLICY_HH
#define SENTINELFLASH_CORE_READ_POLICY_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/calibration.hh"
#include "core/characterization.hh"
#include "core/inference.hh"
#include "core/voltage_cache.hh"
#include "core/voltage_model.hh"
#include "ecc/ecc_model.hh"
#include "nandsim/chip.hh"
#include "nandsim/oracle.hh"
#include "nandsim/read_seq.hh"
#include "nandsim/snapshot.hh"
#include "nandsim/vth_view.hh"
#include "util/metrics.hh"
#include "util/span_trace.hh"

namespace flash::core
{

/** Outcome and cost of one page-read session. */
struct ReadSessionResult
{
    bool success = false;

    /** Page-read attempts, including the first read. */
    int attempts = 0;

    /** Extra single-voltage sentinel-assist reads. */
    int assistReads = 0;

    /** Total read-voltage applications (sensing cost). */
    int senseOps = 0;

    /** Voltages of the last attempt (1-based by boundary). */
    std::vector<int> finalVoltages;

    /** Data-region bit errors of the last attempt. */
    std::uint64_t finalErrors = 0;

    /**
     * Calibration outcome counts of this session (sentinel policy
     * only): case-1 "tune further" decisions, case-2 "tune back"
     * decisions, and converged state-change comparisons.
     */
    int calibTuneFurther = 0;
    int calibTuneBack = 0;
    int calibConverged = 0;

    /** Read retries = attempts after the first. */
    int retries() const { return attempts > 0 ? attempts - 1 : 0; }
};

/** Timing parameters of the latency model. */
struct LatencyParams
{
    double senseUs = 12.0;    ///< per read-voltage application
    double baseUs = 13.0;     ///< fixed per page-read attempt
    double transferUs = 20.0; ///< page transfer to the controller
    double decodeUs = 10.0;   ///< ECC decode attempt
};

/**
 * Latency of a whole read session under the timing model. Every
 * page-read attempt pays the fixed overhead and an ECC decode try; an
 * assist read is a single-voltage on-die sense of the sentinel
 * columns — it pays the fixed command overhead and its sense op (part
 * of senseOps) but no page transfer and no decode. The page is
 * transferred to the controller once per session. The SSD simulator
 * charges the identical model (transfer modelled on the channel);
 * see ssd::SsdSim::readPageOp.
 */
double sessionLatencyUs(const ReadSessionResult &session,
                        const LatencyParams &params);

/**
 * Accumulate one session into a metrics registry under the "read.*"
 * namespace: counters read.sessions, read.failures, read.attempts,
 * read.retries, read.sense_ops, read.assist_reads and the calibration
 * outcomes read.calib.{case1_tune_further, case2_tune_back,
 * converged}; histograms read.latency_us, read.attempts_per_read and
 * read.sense_ops_per_read.
 */
void recordSession(util::MetricsRegistry &metrics,
                   const ReadSessionResult &session, double latency_us);

/**
 * Shared state of one read session: lazily-built Vth views and
 * snapshots plus the decodability oracle against the ECC model. One
 * data snapshot is reused across the session's attempts (retries only
 * re-tune voltages; fresh sensing noise across retries is a
 * second-order effect the paper also neglects).
 *
 * The views batch the static (noise-free) per-cell state of the
 * session's wordline ranges: computed once, shared by the snapshots
 * (which only add one per-session noise sense) and by any packed
 * kernel that needs exact bits.
 *
 * Read sequencing is caller-owned: sensing-noise seeds derive from
 * the clock's stream and this context's (block, wordline, read
 * counter), so identical sessions reproduce identical noise no
 * matter what other reads run before or concurrently.
 */
class ReadContext
{
  public:
    ReadContext(const nand::Chip &chip, int block, int wl, int page,
                const ecc::EccModel &ecc_model,
                std::optional<nand::SentinelOverlay> overlay,
                nand::ReadClock clock = nand::ReadClock());

    /** Lazily-built data-region Vth view (consumes no read seq). */
    const nand::WordlineVthView &dataView();

    /** Lazily-built sentinel-range Vth view (requires an overlay). */
    const nand::WordlineVthView &sentView();

    /** Lazily-built data-region snapshot. */
    const nand::WordlineSnapshot &dataSnap();

    /** Lazily-built sentinel snapshot (requires an overlay). */
    const nand::WordlineSnapshot &sentSnap();

    /** Data-region bit errors of the page at a voltage set. */
    std::uint64_t pageErrors(const std::vector<int> &voltages);

    /** Whether the page decodes at a voltage set. */
    bool decodable(const std::vector<int> &voltages);

    /** Sense operations of one attempt of this page. */
    int pageSenseOps() const;

    /**
     * Attach a causal span recorder: policies append one child span
     * of @p root per attempt / assist read / calibration step (see
     * util::span_trace). Recording alters no session behaviour and
     * consumes no read sequence numbers; nullptr detaches.
     */
    void setSpanBuffer(util::SpanBuffer *spans, int root)
    {
        spans_ = spans;
        spanRoot_ = root;
    }

    /** Attached span recorder (nullptr when none). */
    util::SpanBuffer *spanBuffer() const { return spans_; }

    /** Buffer-local index of the session's root span. */
    int spanRoot() const { return spanRoot_; }

    const nand::Chip &chip() const { return *chip_; }
    int block() const { return block_; }
    int wordline() const { return wl_; }
    int page() const { return page_; }
    const ecc::EccModel &eccModel() const { return *ecc_; }
    const std::optional<nand::SentinelOverlay> &overlay() const
    {
        return overlay_;
    }

  private:
    const nand::Chip *chip_;
    int block_, wl_, page_;
    const ecc::EccModel *ecc_;
    std::optional<nand::SentinelOverlay> overlay_;
    nand::ReadSeq seq_;
    std::optional<nand::WordlineVthView> dataView_;
    std::optional<nand::WordlineVthView> sentView_;
    std::optional<nand::WordlineSnapshot> data_;
    std::optional<nand::WordlineSnapshot> sent_;
    util::SpanBuffer *spans_ = nullptr;
    int spanRoot_ = -1;
};

/**
 * Interface of a read-retry policy. read() is const: a configured
 * policy holds no per-session state, so one instance may serve many
 * sessions concurrently (all mutable session state lives in the
 * ReadContext).
 */
class ReadPolicy
{
  public:
    virtual ~ReadPolicy() = default;

    /** Policy name for reports. */
    virtual std::string name() const = 0;

    /** Run one page-read session. */
    virtual ReadSessionResult read(ReadContext &ctx) const = 0;
};

/**
 * The default mechanism of current flash chips: a vendor retry table
 * that walks all read voltages down a profile-shaped staircase.
 */
class VendorRetryPolicy : public ReadPolicy
{
  public:
    /**
     * @param model Voltage model (supplies defaults and the typical
     *        shift profile vendors encode into their tables).
     * @param max_retries Retry budget.
     * @param step_dac Per-retry step at the mid boundary.
     */
    VendorRetryPolicy(const nand::VoltageModel &model, int max_retries = 12,
                      double step_dac = 3.5);

    std::string name() const override { return "current-flash"; }
    ReadSessionResult read(ReadContext &ctx) const override;

    /** Voltage set of retry @p i (1-based). */
    std::vector<int> retryVoltages(int i) const;

    /** Retry budget. */
    int maxRetries() const { return maxRetries_; }

  private:
    std::vector<int> defaults_;
    std::vector<double> profile_; ///< per-boundary step scale
    int maxRetries_;
    double stepDac_;
};

/**
 * Oracle baseline ("OPT"): first read at the defaults, then one jump
 * straight to the exhaustive-search optimum. Unimplementable on real
 * hardware; upper-bounds every policy.
 */
class OraclePolicy : public ReadPolicy
{
  public:
    explicit OraclePolicy(std::vector<int> defaults,
                          bool first_read_optimal = false)
        : defaults_(std::move(defaults)), firstOptimal_(first_read_optimal)
    {}

    std::string name() const override { return "oracle"; }
    ReadSessionResult read(ReadContext &ctx) const override;

  private:
    std::vector<int> defaults_;
    bool firstOptimal_;
    nand::OracleSearch oracle_;
};

/**
 * Tracking baseline (Cai et al. HPCA'15 / Shim et al. MICRO'19
 * style): the FTL periodically records the optimal voltages of one
 * reference wordline per block and applies them to every read in the
 * block; on failure it falls back to vendor stepping around the
 * tracked point.
 */
class TrackingPolicy : public ReadPolicy
{
  public:
    /**
     * @param vendor Fallback stepping policy parameters.
     * @param reference_wl Reference wordline whose optimum is tracked.
     */
    TrackingPolicy(const nand::VoltageModel &model, int reference_wl = 0,
                   int max_retries = 12, double step_dac = 3.5);

    std::string name() const override { return "tracking"; }

    /**
     * Update the tracked voltages from the reference wordline's
     * current state (the FTL's periodic refresh). The reference read
     * draws its sensing noise from @p clock.
     */
    void track(const nand::Chip &chip, int block,
               nand::ReadClock clock = nand::ReadClock());

    /** Tracked voltage set (after track()). */
    const std::vector<int> &trackedVoltages() const { return tracked_; }

    ReadSessionResult read(ReadContext &ctx) const override;

  private:
    std::vector<int> defaults_;
    std::vector<double> profile_;
    std::vector<int> tracked_;
    int referenceWl_;
    int maxRetries_;
    double stepDac_;
    nand::OracleSearch oracle_;
};

/**
 * The paper's sentinel policy: on a failed default read, measure the
 * sentinel error difference (via a cheap single-voltage assist read
 * when the failed page did not sense the sentinel voltage), infer all
 * voltages from the factory tables, and calibrate with state-change
 * comparisons if the inferred read still fails.
 */
class SentinelPolicy : public ReadPolicy
{
  public:
    /**
     * @param tables Factory characterization of the matching band.
     * @param defaults Default voltages.
     * @param calibration Calibration step parameters.
     * @param max_retries Retry budget (including the inferred read).
     */
    SentinelPolicy(const Characterization &tables,
                   std::vector<int> defaults,
                   CalibrationParams calibration = {}, int max_retries = 10);

    std::string
    name() const override
    {
        std::string n = "sentinel";
        if (model_)
            n += "+model";
        if (cache_)
            n += "+cache";
        return n;
    }
    ReadSessionResult read(ReadContext &ctx) const override;

    /** Inference engine (exposed for the experiment harnesses). */
    const InferenceEngine &engine() const { return engine_; }

    /**
     * Override the voltages of the first read attempt (e.g. with
     * FTL-tracked voltages, the combined scheme the paper suggests in
     * Related Work). The sentinel error difference is still measured
     * against the default sentinel voltage.
     */
    void setFirstReadVoltages(std::vector<int> voltages);

    /**
     * Attach a per-block inferred-voltage cache (nullptr detaches).
     * With a cache, every session first looks up the block's last
     * successful sentinel offset under its current aging epoch and, on
     * a hit, tries the voltages inferred from it before the default
     * read — a decode there skips the sentinel assist read entirely.
     * Offsets are stored back whenever a session succeeds past the
     * default read. The cache makes sessions depend on which reads ran
     * before them, so deterministic harnesses attach one only to
     * serial runs; without attachCache() behaviour is bit-identical to
     * the cacheless policy.
     */
    void attachCache(VoltageCache *cache) { cache_ = cache; }

    /** Attached cache (nullptr when none). */
    VoltageCache *cache() const { return cache_; }

    /**
     * Attach a predictive voltage model (nullptr detaches). With a
     * model, every session first solves a closed-form prediction for
     * the block's chunk under its current aging epoch; when the
     * prediction's confidence clears the model's threshold, the first
     * attempt reads directly at the predicted offset with **no assist
     * sense**, falling back to the normal first-read/assist path if
     * that attempt fails to decode. Every successful inference or
     * calibration feeds the model an observation, so confidence grows
     * as the policy runs. Like the cache, an attached model makes
     * sessions depend on which reads ran before them — deterministic
     * harnesses attach one only to serial runs; without attachModel()
     * behaviour is bit-identical to the model-free policy.
     */
    void attachModel(VoltagePredictor *model) { model_ = model; }

    /** Attached model (nullptr when none). */
    VoltagePredictor *model() const { return model_; }

  private:
    InferenceEngine engine_;
    CalibrationParams calibration_;
    int maxRetries_;
    std::vector<int> firstRead_;
    VoltageCache *cache_ = nullptr;
    VoltagePredictor *model_ = nullptr;
};

} // namespace flash::core

#endif // SENTINELFLASH_CORE_READ_POLICY_HH
