#include "core/inference.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace flash::core
{

namespace
{

/** Offsets beyond this are model extrapolation artifacts. */
constexpr int kMaxAbsOffset = 100;

int
clampOffset(double off)
{
    const int i = static_cast<int>(std::lround(off));
    return std::clamp(i, -kMaxAbsOffset, kMaxAbsOffset);
}

} // namespace

InferenceEngine::InferenceEngine(const Characterization &tables,
                                 std::vector<int> defaults)
    : tables_(&tables), defaults_(std::move(defaults))
{
    util::fatalIf(!tables_->dToVopt.valid(),
                  "InferenceEngine: characterization has no d fit");
    util::fatalIf(defaults_.size() != tables_->crossVoltage.size(),
                  "InferenceEngine: defaults/correlation size mismatch");
}

InferredVoltages
InferenceEngine::infer(double d_rate) const
{
    InferredVoltages out = inferAt(clampOffset(tables_->dToVopt(d_rate)));
    out.dRate = d_rate;
    return out;
}

InferredVoltages
InferenceEngine::inferAt(int sentinel_offset) const
{
    InferredVoltages out;
    out.sentinelOffset = sentinel_offset;
    out.voltages = defaults_;
    const int k_s = tables_->sentinelBoundary;
    for (std::size_t k = 1; k < defaults_.size(); ++k) {
        int off;
        if (static_cast<int>(k) == k_s) {
            off = sentinel_offset;
        } else {
            off = clampOffset(
                tables_->crossVoltage[k](sentinel_offset));
        }
        out.voltages[k] += off;
    }
    return out;
}

} // namespace flash::core
