/**
 * @file
 * Per-block inferred-voltage cache.
 *
 * The paper's characterization (and the history-based schemes it
 * compares against) shows optimal read voltages are strongly
 * correlated across the wordlines of a block: once one read session
 * has inferred and verified a sentinel offset, later reads of the
 * same block can seed their first attempt from it and skip the
 * sentinel assist read entirely when the seeded attempt decodes.
 *
 * An entry is keyed by the block's aging epoch (P/E cycles, effective
 * retention hours, retention temperature); any epoch change makes the
 * entry stale, because the stored offset described a distribution
 * that no longer exists. Hit/miss/stale/store counters export through
 * the util::metrics registry under the "cache.*" namespace.
 *
 * Thread-safe (internally locked), but note that sharing one cache
 * across concurrently-evaluated sessions makes results depend on
 * completion order; the deterministic harnesses attach a cache only
 * to serial (threads=1) runs. The cache is strictly opt-in — no
 * policy uses one unless it is explicitly attached.
 */

#ifndef SENTINELFLASH_CORE_VOLTAGE_CACHE_HH
#define SENTINELFLASH_CORE_VOLTAGE_CACHE_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "nandsim/voltage_model.hh"
#include "util/metrics.hh"

namespace flash::core
{

/** Aging epoch a cached offset was inferred under. */
struct BlockEpoch
{
    std::uint32_t peCycles = 0;
    double retentionHours = 0.0;
    double retentionTempC = 25.0;

    /**
     * Two real-valued aging parameters count as the same epoch when
     * they agree to a relative 1e-6 (absolute below 1.0). Aging
     * checkpoints that save and restore retention state reproduce the
     * hours/temperature through floating-point round trips; exact
     * `double` equality would let that rounding spuriously invalidate
     * live cache entries, while any physically meaningful drift is
     * orders of magnitude above the tolerance.
     */
    static bool
    nearlyEqual(double a, double b)
    {
        const double tol =
            1e-6 * std::max({1.0, std::fabs(a), std::fabs(b)});
        return std::fabs(a - b) <= tol;
    }

    bool
    operator==(const BlockEpoch &o) const
    {
        return peCycles == o.peCycles
            && nearlyEqual(retentionHours, o.retentionHours)
            && nearlyEqual(retentionTempC, o.retentionTempC);
    }
};

/** Epoch of a block's current aging state. */
inline BlockEpoch
epochOf(const nand::BlockAge &age)
{
    return BlockEpoch{age.peCycles, age.effRetentionHours,
                      age.retentionTempC};
}

/** Per-block cache of the last successfully verified sentinel offset. */
class VoltageCache
{
  public:
    /** Lifetime counters. */
    struct Stats
    {
        std::uint64_t hits = 0;    ///< valid entry found
        std::uint64_t misses = 0;  ///< no entry for the block
        std::uint64_t stales = 0;  ///< entry dropped on epoch change
        std::uint64_t stores = 0;  ///< offsets recorded by read sessions
        std::uint64_t rewarms = 0; ///< offsets recorded by scrub probes
        std::uint64_t invalidations = 0; ///< live entries dropped
    };

    /**
     * Cached sentinel offset of @p block if one exists for @p epoch.
     * An entry from a different epoch is dropped and counted stale;
     * every call counts exactly one of hit/miss/stale.
     */
    std::optional<int> lookup(int block, const BlockEpoch &epoch);

    /** Record the offset of a successful read session. */
    void store(int block, const BlockEpoch &epoch, int sentinel_offset);

    /**
     * Record an offset inferred by a background scrub probe. Same
     * effect as store() but counted separately, so hit-rate analysis
     * can attribute warm entries to the scrubber vs foreground reads.
     */
    void rewarm(int block, const BlockEpoch &epoch, int sentinel_offset);

    /**
     * Drop the entry of @p block (e.g. the FTL erased it); counts an
     * invalidation only when a live entry was actually dropped.
     */
    void invalidate(int block);

    /** Number of live entries. */
    std::size_t size() const;

    /** Counter snapshot. */
    Stats stats() const;

    /**
     * Add the counters to a metrics registry as cache.hit,
     * cache.miss, cache.stale, cache.store, cache.rewarm and
     * cache.invalidate.
     */
    void exportMetrics(util::MetricsRegistry &metrics) const;

    /**
     * Heap + object bytes of the cache state, so per-device memory
     * reports (fleet footprints) stay complete when a cache rides
     * along.
     */
    std::size_t footprintBytes() const;

  private:
    struct Entry
    {
        BlockEpoch epoch;
        int sentinelOffset = 0;
    };

    mutable std::mutex mutex_;
    std::unordered_map<int, Entry> entries_;
    Stats stats_;
};

} // namespace flash::core

#endif // SENTINELFLASH_CORE_VOLTAGE_CACHE_HH
