/**
 * @file
 * Per-policy metrics collection and JSON export, shared by the bench
 * harnesses' `--metrics-out` flag and the regression tests.
 *
 * The export is deterministic byte-for-byte: sessions run in parallel
 * but are reduced sequentially in wordline order (see evaluateBlock),
 * registries serialize name-ordered, and doubles format with a fixed
 * round-trip format — so the same configuration produces the same
 * JSON at every `--threads N`.
 */

#ifndef SENTINELFLASH_CORE_POLICY_METRICS_HH
#define SENTINELFLASH_CORE_POLICY_METRICS_HH

#include <ostream>
#include <string>
#include <vector>

#include "core/evaluator.hh"

namespace flash::core
{

/** Metrics of one policy run over a block. */
struct PolicyMetricsRun
{
    std::string policy;
    util::MetricsRegistry metrics;
};

/**
 * Run each policy on one page of every sampled wordline of a block
 * (see evaluateBlock) and collect its "read.*" metrics registry.
 */
std::vector<PolicyMetricsRun>
collectPolicyMetrics(const nand::Chip &chip, int block,
                     const std::vector<const ReadPolicy *> &policies,
                     const ecc::EccModel &ecc_model,
                     const std::optional<nand::SentinelOverlay> &overlay,
                     const LatencyParams &latency = {}, int page = -1,
                     int wl_stride = 1, int threads = 1,
                     std::uint64_t read_stream = 0);

/**
 * Serialize runs as {"policies": {"<name>": <registry JSON>, ...}}.
 * Policies keep the order given (an export compares against another
 * of the same harness, not against arbitrary files).
 */
void writePolicyMetricsJson(std::ostream &os,
                            const std::vector<PolicyMetricsRun> &runs);

/**
 * writePolicyMetricsJson() to @p path (fatal when the file cannot be
 * opened). Prints a one-line note to stderr so harness users see
 * where the export went.
 */
void savePolicyMetricsJson(const std::string &path,
                           const std::vector<PolicyMetricsRun> &runs);

} // namespace flash::core

#endif // SENTINELFLASH_CORE_POLICY_METRICS_HH
