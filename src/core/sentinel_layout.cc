#include "core/sentinel_layout.hh"

#include <cmath>

#include "util/logging.hh"

namespace flash::core
{

int
defaultSentinelBoundary(nand::CellType type)
{
    // The single-voltage (LSB) boundary: V4 on TLC, V8 on QLC.
    return nand::stateCount(type) / 2;
}

int
resolveSentinelBoundary(const nand::ChipGeometry &geom,
                        const SentinelConfig &config)
{
    const int k = config.sentinelBoundary > 0
        ? config.sentinelBoundary
        : defaultSentinelBoundary(geom.cellType);
    util::fatalIf(k < 1 || k > geom.boundaries(),
                  "sentinel: boundary out of range");
    return k;
}

nand::SentinelOverlay
makeOverlay(const nand::ChipGeometry &geom, const SentinelConfig &config)
{
    util::fatalIf(config.ratio <= 0.0 || config.ratio > 0.5,
                  "sentinel: ratio out of range");
    const int k = resolveSentinelBoundary(geom, config);

    int count = static_cast<int>(
        std::lround(config.ratio * geom.bitlines()));
    count += count & 1; // even split between the two states
    util::fatalIf(count < 2, "sentinel: ratio yields fewer than 2 cells");
    util::fatalIf(count > geom.oobBitlines,
                  "sentinel: overlay does not fit in the OOB area");

    nand::SentinelOverlay o;
    o.start = geom.bitlines() - count;
    o.count = count;
    o.lowState = static_cast<std::uint8_t>(k - 1);
    o.highState = static_cast<std::uint8_t>(k);
    return o;
}

} // namespace flash::core
