#include "core/voltage_cache.hh"

namespace flash::core
{

std::optional<int>
VoltageCache::lookup(int block, const BlockEpoch &epoch)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(block);
    if (it == entries_.end()) {
        ++stats_.misses;
        return std::nullopt;
    }
    if (!(it->second.epoch == epoch)) {
        // The block aged since the offset was inferred; the stored
        // offset described a distribution that no longer exists.
        entries_.erase(it);
        ++stats_.stales;
        return std::nullopt;
    }
    ++stats_.hits;
    return it->second.sentinelOffset;
}

void
VoltageCache::store(int block, const BlockEpoch &epoch, int sentinel_offset)
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_[block] = Entry{epoch, sentinel_offset};
    ++stats_.stores;
}

void
VoltageCache::rewarm(int block, const BlockEpoch &epoch, int sentinel_offset)
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_[block] = Entry{epoch, sentinel_offset};
    ++stats_.rewarms;
}

void
VoltageCache::invalidate(int block)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (entries_.erase(block) > 0)
        ++stats_.invalidations;
}

std::size_t
VoltageCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

VoltageCache::Stats
VoltageCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void
VoltageCache::exportMetrics(util::MetricsRegistry &metrics) const
{
    const Stats s = stats();
    metrics.add("cache.hit", s.hits);
    metrics.add("cache.invalidate", s.invalidations);
    metrics.add("cache.miss", s.misses);
    metrics.add("cache.rewarm", s.rewarms);
    metrics.add("cache.stale", s.stales);
    metrics.add("cache.store", s.stores);
}

std::size_t
VoltageCache::footprintBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    // Unordered-map nodes carry a hash + next pointer beside the
    // payload; the bucket array is one pointer per bucket.
    return sizeof(*this)
        + entries_.size()
        * (sizeof(std::pair<const int, Entry>) + 2 * sizeof(void *))
        + entries_.bucket_count() * sizeof(void *);
}

} // namespace flash::core
