#include "core/tables_io.hh"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "util/logging.hh"

namespace flash::core
{

namespace
{

constexpr const char *kMagic = "sentinelflash-tables";
constexpr const char *kVersion = "v1";

/** Next non-comment, non-empty line (fatal at EOF). */
std::string
nextLine(std::istream &is, const char *what)
{
    std::string line;
    while (std::getline(is, line)) {
        const auto pos = line.find_first_not_of(" \t\r");
        if (pos == std::string::npos || line[pos] == '#')
            continue;
        return line;
    }
    util::fatal(std::string("tables: unexpected end of input reading ")
                + what);
}

} // namespace

void
saveTables(std::ostream &os, const std::vector<Characterization> &bands)
{
    util::fatalIf(bands.empty(), "tables: nothing to save");
    os << kMagic << ' ' << kVersion << '\n';
    os << "bands " << bands.size() << '\n';
    os << std::setprecision(17);
    for (const auto &b : bands) {
        util::fatalIf(!b.dToVopt.valid(),
                      "tables: band has no polynomial fit");
        os << "band " << b.tempBandC << ' ' << b.sentinelBoundary << ' '
           << b.samples << ' ' << b.dFitRmse << '\n';
        os << "poly " << b.dToVopt.degree() << ' ' << b.dToVopt.xShift()
           << ' ' << b.dToVopt.xScale();
        for (double c : b.dToVopt.coeffs())
            os << ' ' << c;
        os << '\n';
        for (std::size_t k = 1; k < b.crossVoltage.size(); ++k) {
            const auto &f = b.crossVoltage[k];
            os << "cross " << k << ' ' << f.slope << ' ' << f.intercept
               << ' ' << f.r2 << ' ' << f.n << '\n';
        }
        os << "end\n";
    }
    util::fatalIf(!os, "tables: write error");
}

void
saveTablesFile(const std::string &path,
               const std::vector<Characterization> &bands)
{
    std::ofstream os(path);
    util::fatalIf(!os, "tables: cannot open for writing: " + path);
    saveTables(os, bands);
}

std::vector<Characterization>
loadTables(std::istream &is)
{
    {
        std::istringstream header(nextLine(is, "header"));
        std::string magic, version;
        header >> magic >> version;
        util::fatalIf(magic != kMagic, "tables: bad magic");
        util::fatalIf(version != kVersion,
                      "tables: unsupported version " + version);
    }

    std::size_t count = 0;
    {
        std::istringstream line(nextLine(is, "band count"));
        std::string tag;
        line >> tag >> count;
        util::fatalIf(tag != "bands" || !line || count == 0,
                      "tables: bad band count record");
    }

    std::vector<Characterization> bands;
    bands.reserve(count);
    for (std::size_t bi = 0; bi < count; ++bi) {
        Characterization b;
        {
            std::istringstream line(nextLine(is, "band record"));
            std::string tag;
            line >> tag >> b.tempBandC >> b.sentinelBoundary >> b.samples
                >> b.dFitRmse;
            util::fatalIf(tag != "band" || !line,
                          "tables: bad band record");
            util::fatalIf(b.sentinelBoundary < 1,
                          "tables: bad sentinel boundary");
        }
        {
            std::istringstream line(nextLine(is, "poly record"));
            std::string tag;
            std::size_t degree = 0;
            double shift = 0.0, scale = 1.0;
            line >> tag >> degree >> shift >> scale;
            util::fatalIf(tag != "poly" || !line,
                          "tables: bad poly record");
            std::vector<double> coeffs(degree + 1, 0.0);
            for (auto &c : coeffs)
                line >> c;
            util::fatalIf(!line, "tables: truncated poly coefficients");
            b.dToVopt = util::Polynomial(std::move(coeffs), shift, scale);
        }

        // Cross records until "end". Boundaries may arrive in any
        // order; size the vector as records come in.
        for (;;) {
            const std::string raw = nextLine(is, "cross record");
            std::istringstream line(raw);
            std::string tag;
            line >> tag;
            if (tag == "end")
                break;
            util::fatalIf(tag != "cross", "tables: bad record: " + raw);
            std::size_t k = 0;
            util::LinearFit f;
            line >> k >> f.slope >> f.intercept >> f.r2 >> f.n;
            util::fatalIf(!line || k < 1 || k > 63,
                          "tables: bad cross record: " + raw);
            if (b.crossVoltage.size() <= k)
                b.crossVoltage.resize(k + 1);
            b.crossVoltage[k] = f;
        }
        util::fatalIf(static_cast<int>(b.crossVoltage.size())
                          <= b.sentinelBoundary,
                      "tables: band missing cross-voltage records");
        bands.push_back(std::move(b));
    }
    return bands;
}

std::vector<Characterization>
loadTablesFile(const std::string &path)
{
    std::ifstream is(path);
    util::fatalIf(!is, "tables: cannot open for reading: " + path);
    return loadTables(is);
}

} // namespace flash::core
