/**
 * @file
 * Experiment drivers shared by the benchmark harnesses: run a read
 * policy across a block, and measure per-boundary voltage accuracy
 * of inference/calibration against the oracle.
 */

#ifndef SENTINELFLASH_CORE_EVALUATOR_HH
#define SENTINELFLASH_CORE_EVALUATOR_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/read_policy.hh"
#include "util/span_trace.hh"
#include "util/stats.hh"

namespace flash::core
{

/** Aggregate results of running one policy over a block. */
struct PolicyBlockStats
{
    util::RunningStats retries;   ///< per session
    util::RunningStats senseOps;  ///< per session
    util::RunningStats latencyUs; ///< per session
    std::vector<int> retriesPerWordline; ///< Fig 13 series
    int sessions = 0;
    int failures = 0; ///< sessions ending in read failure

    /**
     * Per-session counters and latency histograms ("read.*", see
     * core::recordSession). Filled in the sequential reduction, so
     * identical at every thread count.
     */
    util::MetricsRegistry metrics;
};

/**
 * Run @p policy on one page of every sampled wordline of a block.
 *
 * Sessions are independent (one ReadContext per wordline, noise
 * derived from @p read_stream and the wordline address), so they can
 * run on any number of threads: per-wordline results are computed in
 * parallel and reduced sequentially in wordline order, making the
 * returned statistics bit-identical at every thread count.
 *
 * @param page Page to read; -1 selects the MSB page (worst case).
 * @param wl_stride Sample every Nth wordline.
 * @param threads Worker threads (1 = serial).
 * @param read_stream Read-noise stream key (see nand::ReadClock).
 * @param spans Optional causal span sink: one "read_session" root per
 *        sampled wordline with "attempt" / "assist_read" /
 *        "calib_step" / "xfer" children on a virtual timeline laid
 *        end-to-end from the LatencyParams (sessions are emitted in
 *        wordline order; the root's dur_us is the same
 *        sessionLatencyUs value recordSession() accumulates, so the
 *        analyzer's critical-path totals match the metrics
 *        bit-exactly).
 */
PolicyBlockStats evaluateBlock(const nand::Chip &chip, int block,
                               const ReadPolicy &policy,
                               const ecc::EccModel &ecc_model,
                               const std::optional<nand::SentinelOverlay>
                                   &overlay,
                               const LatencyParams &latency, int page = -1,
                               int wl_stride = 1, int threads = 1,
                               std::uint64_t read_stream = 0,
                               util::SpanTrace *spans = nullptr);

/**
 * The paper's success rule: a found voltage succeeds when the RBER it
 * produces is within 5% of the optimal voltage's RBER, where the 5%
 * is taken of the wordline's error dynamic range (default minus
 * optimal) with a small absolute slack for counting noise.
 */
struct SuccessRule
{
    double relOptimal = 0.05;  ///< slack relative to the optimal errors
    double relExcess = 0.05;   ///< slack relative to (default - optimal)
    double absolute = 2.0;     ///< absolute slack in bit errors

    /**
     * Read-to-read measurement noise slack, in units of
     * sqrt(optimal errors). The paper notes two reads at the same
     * voltage give different RBERs, so voltages whose error counts
     * are statistically indistinguishable from the optimal's count
     * as successes.
     */
    double noiseSigmas = 0.6;

    /** Error budget for one boundary. */
    double
    budget(std::uint64_t err_optimal, std::uint64_t err_default) const
    {
        const double opt = static_cast<double>(err_optimal);
        const double def = static_cast<double>(err_default);
        const double excess = def > opt ? def - opt : 0.0;
        const double slack = std::max(relOptimal * opt, relExcess * excess)
            + absolute + noiseSigmas * std::sqrt(opt);
        return opt + slack;
    }
};

/** Per-boundary accuracy record of one wordline. */
struct BoundaryAccuracy
{
    int offOptimal = 0;     ///< oracle offset
    int offInferred = 0;    ///< offset right after inference
    int offCalibrated = 0;  ///< offset after calibration
    std::uint64_t errDefault = 0;
    std::uint64_t errInferred = 0;
    std::uint64_t errCalibrated = 0;
    std::uint64_t errOptimal = 0;
    bool inferOk = false;   ///< inference success (SuccessRule)
    bool calibOk = false;   ///< success after calibration
};

/** Accuracy records of one wordline, indexed 1-based by boundary. */
struct WordlineAccuracy
{
    std::vector<BoundaryAccuracy> boundaries;
    double dRate = 0.0;
    int calibSteps = 0; ///< calibration steps actually taken
};

/** Options of the accuracy evaluation. */
struct AccuracyOptions
{
    SuccessRule rule;
    CalibrationParams calibration;
    int maxCalibSteps = 5;

    /** Read-noise stream key (see nand::ReadClock). */
    std::uint64_t readStream = 0;
};

/**
 * Measure inference/calibration accuracy on one wordline: infer from
 * the sentinel error difference, then run state-change calibration
 * steps while any boundary is still outside the success budget (the
 * offline counterpart of "calibrate while the read keeps failing"),
 * and grade each boundary against the oracle.
 */
WordlineAccuracy evaluateWordlineAccuracy(const nand::Chip &chip, int block,
                                          int wl,
                                          const Characterization &tables,
                                          const nand::SentinelOverlay
                                              &overlay,
                                          const AccuracyOptions &options
                                          = {});

/**
 * evaluateWordlineAccuracy() over every @p wl_stride -th wordline of
 * a block, optionally on several threads. Per-wordline noise derives
 * from options.readStream and the wordline address, so the result
 * vector (indexed by sample order) is bit-identical at every thread
 * count.
 */
std::vector<WordlineAccuracy>
evaluateBlockAccuracy(const nand::Chip &chip, int block,
                      const Characterization &tables,
                      const nand::SentinelOverlay &overlay,
                      const AccuracyOptions &options = {},
                      int wl_stride = 1, int threads = 1);

} // namespace flash::core

#endif // SENTINELFLASH_CORE_EVALUATOR_HH
