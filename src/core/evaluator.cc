#include "core/evaluator.hh"

#include <cstring>

#include "core/error_difference.hh"
#include "nandsim/oracle.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace flash::core
{

namespace
{

/** Wordlines sampled by a strided block sweep. */
std::vector<int>
sampledWordlines(const nand::Chip &chip, int wl_stride)
{
    std::vector<int> wls;
    for (int wl = 0; wl < chip.geometry().wordlinesPerBlock();
         wl += wl_stride) {
        wls.push_back(wl);
    }
    return wls;
}

/**
 * Assign the session's spans a virtual timeline from the latency
 * model: children laid end-to-end from @p session_start in recording
 * (causal) order, a trailing "xfer" child for the page transfer, and
 * the root pinned to @p latency_us — the exact sessionLatencyUs value
 * the metrics accumulate, so per-class critical-path totals computed
 * from root spans match the metrics bit-exactly (the children's sum
 * only agrees to rounding, their additions group differently).
 */
void
timeSessionSpans(util::SpanBuffer &sb, const LatencyParams &latency,
                 double session_start, double latency_us)
{
    double t = session_start;
    for (int s = 1; s < sb.size(); ++s) {
        const util::SpanRec &rec = sb.rec(s);
        double dur = 0.0;
        if (std::strcmp(rec.cls, "attempt") == 0) {
            dur = latency.baseUs + latency.decodeUs
                + sb.numAttr(s, "sense_ops") * latency.senseUs;
        } else if (std::strcmp(rec.cls, "assist_read") == 0) {
            dur = latency.baseUs + latency.senseUs;
        }
        sb.time(s, t, dur);
        t += dur;
    }
    const int xfer = sb.begin("xfer", 0);
    sb.time(xfer, t, latency.transferUs);
    sb.time(0, session_start, latency_us);
}

} // namespace

PolicyBlockStats
evaluateBlock(const nand::Chip &chip, int block, const ReadPolicy &policy,
              const ecc::EccModel &ecc_model,
              const std::optional<nand::SentinelOverlay> &overlay,
              const LatencyParams &latency, int page, int wl_stride,
              int threads, std::uint64_t read_stream,
              util::SpanTrace *spans)
{
    util::fatalIf(wl_stride < 1, "evaluateBlock: bad stride");
    util::fatalIf(threads < 1, "evaluateBlock: bad thread count");
    const int target_page =
        page < 0 ? chip.grayCode().msbPage() : page;

    const std::vector<int> wls = sampledWordlines(chip, wl_stride);
    const nand::ReadClock clock(read_stream);

    // Sessions run in parallel, each writing only its own slot; the
    // floating-point reduction below stays sequential in wordline
    // order so the statistics are bit-identical at any thread count.
    std::vector<ReadSessionResult> sessions(wls.size());
    std::vector<util::SpanBuffer> bufs(spans ? wls.size() : 0);
    util::parallelFor(
        threads, static_cast<int>(wls.size()), [&](int i) {
            ReadContext ctx(chip, block,
                            wls[static_cast<std::size_t>(i)], target_page,
                            ecc_model, overlay, clock);
            if (spans) {
                util::SpanBuffer &sb = bufs[static_cast<std::size_t>(i)];
                ctx.setSpanBuffer(&sb, sb.begin("read_session"));
            }
            sessions[static_cast<std::size_t>(i)] = policy.read(ctx);
        });

    PolicyBlockStats stats;
    double span_cursor = 0.0;
    for (std::size_t i = 0; i < sessions.size(); ++i) {
        const ReadSessionResult &session = sessions[i];
        const double latency_us = sessionLatencyUs(session, latency);
        ++stats.sessions;
        if (!session.success)
            ++stats.failures;
        stats.retries.add(session.retries());
        stats.senseOps.add(session.senseOps);
        stats.latencyUs.add(latency_us);
        stats.retriesPerWordline.push_back(session.retries());
        recordSession(stats.metrics, session, latency_us);
        if (spans) {
            util::SpanBuffer &sb = bufs[i];
            sb.str(0, "policy", policy.name());
            sb.num(0, "wordline", static_cast<double>(wls[i]));
            sb.num(0, "page", static_cast<double>(target_page));
            sb.num(0, "attempts", static_cast<double>(session.attempts));
            sb.num(0, "assist_reads",
                   static_cast<double>(session.assistReads));
            sb.num(0, "sense_ops", static_cast<double>(session.senseOps));
            sb.num(0, "success", session.success ? 1.0 : 0.0);
            timeSessionSpans(sb, latency, span_cursor, latency_us);
            spans->emit(sb);
            span_cursor += latency_us;
        }
    }
    return stats;
}

WordlineAccuracy
evaluateWordlineAccuracy(const nand::Chip &chip, int block, int wl,
                         const Characterization &tables,
                         const nand::SentinelOverlay &overlay,
                         const AccuracyOptions &options)
{
    const auto defaults = chip.model().defaultVoltages();
    const int states = chip.geometry().states();
    const nand::OracleSearch oracle;

    WordlineAccuracy out;
    out.boundaries.resize(static_cast<std::size_t>(states));

    nand::ReadSeq seq =
        nand::ReadClock(options.readStream).session(block, wl);
    const auto sent =
        sentinelSnapshot(chip, block, wl, overlay, seq.next());
    const auto data = nand::WordlineSnapshot::dataRegion(
        chip, block, wl, seq.next());

    const int k_s = tables.sentinelBoundary;
    const int v_s_def = defaults[static_cast<std::size_t>(k_s)];
    out.dRate = countSentinelErrors(sent, k_s, v_s_def).dRate();

    InferenceEngine engine(tables, defaults);
    const InferredVoltages inferred = engine.infer(out.dRate);

    // Oracle ground truth and per-boundary budgets.
    const auto opts = oracle.optimalOffsets(data, defaults);
    std::vector<double> budget(static_cast<std::size_t>(states), 0.0);
    for (int k = 1; k < states; ++k) {
        const auto &o = opts[static_cast<std::size_t>(k)];
        budget[static_cast<std::size_t>(k)] =
            options.rule.budget(o.errors, o.defaultErrors);
    }

    const auto within_budget = [&](const std::vector<int> &voltages) {
        for (int k = 1; k < states; ++k) {
            const auto err = data.boundaryErrors(
                k, voltages[static_cast<std::size_t>(k)]);
            if (static_cast<double>(err)
                > budget[static_cast<std::size_t>(k)]) {
                return false;
            }
        }
        return true;
    };

    // Calibration: step the sentinel offset while the wordline's
    // voltages are still off (the offline counterpart of "while the
    // read keeps failing"), then spend the remaining retry budget
    // probing +/- delta around the converged estimate, keeping the
    // first voltage set whose read succeeds (exactly what the online
    // policy does with ECC feedback).
    int offset = inferred.sentinelOffset;
    std::vector<int> calibrated = inferred.voltages;
    int steps = 0;
    while (steps < options.maxCalibSteps) {
        if (within_budget(calibrated))
            break;
        const auto obs = observeStateChange(
            data, sent, k_s, v_s_def, v_s_def + offset,
            options.calibration.matchTolerance);
        if (obs.decision == CalibrationCase::Converged)
            break;
        offset = calibratedOffset(
            offset, obs.decision == CalibrationCase::TuneFurther,
            out.dRate, options.calibration.delta);
        calibrated = engine.inferAt(offset).voltages;
        ++steps;
    }
    if (!within_budget(calibrated)) {
        // Probe around the converged center; first success wins.
        const std::vector<int> center = engine.inferAt(offset).voltages;
        calibrated = center;
        for (int probe = 1; steps < options.maxCalibSteps; ++probe) {
            const int step = (probe + 1) / 2;
            const int try_offset = offset
                + (probe % 2 ? 1 : -1) * step * options.calibration.delta;
            const auto v = engine.inferAt(try_offset).voltages;
            ++steps;
            if (within_budget(v)) {
                calibrated = v;
                break;
            }
        }
    }
    out.calibSteps = steps;

    for (int k = 1; k < states; ++k) {
        auto &b = out.boundaries[static_cast<std::size_t>(k)];
        const int vd = defaults[static_cast<std::size_t>(k)];
        b.offOptimal = opts[static_cast<std::size_t>(k)].offset;
        b.offInferred =
            inferred.voltages[static_cast<std::size_t>(k)] - vd;
        b.offCalibrated =
            calibrated[static_cast<std::size_t>(k)] - vd;
        b.errDefault = opts[static_cast<std::size_t>(k)].defaultErrors;
        b.errInferred = data.boundaryErrors(k, vd + b.offInferred);
        b.errCalibrated = data.boundaryErrors(k, vd + b.offCalibrated);
        b.errOptimal = opts[static_cast<std::size_t>(k)].errors;

        const double bud = budget[static_cast<std::size_t>(k)];
        b.inferOk = static_cast<double>(b.errInferred) <= bud;
        b.calibOk = static_cast<double>(b.errCalibrated) <= bud;
    }
    return out;
}

std::vector<WordlineAccuracy>
evaluateBlockAccuracy(const nand::Chip &chip, int block,
                      const Characterization &tables,
                      const nand::SentinelOverlay &overlay,
                      const AccuracyOptions &options, int wl_stride,
                      int threads)
{
    util::fatalIf(wl_stride < 1, "evaluateBlockAccuracy: bad stride");
    util::fatalIf(threads < 1, "evaluateBlockAccuracy: bad thread count");

    const std::vector<int> wls = sampledWordlines(chip, wl_stride);
    std::vector<WordlineAccuracy> out(wls.size());
    util::parallelFor(
        threads, static_cast<int>(wls.size()), [&](int i) {
            out[static_cast<std::size_t>(i)] = evaluateWordlineAccuracy(
                chip, block, wls[static_cast<std::size_t>(i)], tables,
                overlay, options);
        });
    return out;
}

} // namespace flash::core
