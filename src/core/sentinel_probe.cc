#include "core/sentinel_probe.hh"

#include "core/error_difference.hh"

namespace flash::core
{

SentinelProbe
probeSentinel(const nand::Chip &chip, int block, int wl,
              const InferenceEngine &engine,
              const nand::SentinelOverlay &overlay, std::uint64_t read_seq)
{
    const int k_s = engine.sentinelBoundary();
    const nand::WordlineSnapshot sent =
        sentinelSnapshot(chip, block, wl, overlay, read_seq);
    const SentinelErrors errs = countSentinelErrors(
        sent, k_s, engine.defaults()[static_cast<std::size_t>(k_s)]);

    SentinelProbe probe;
    probe.dRate = errs.dRate();
    probe.errorRate = errs.sentinels
        ? (static_cast<double>(errs.up) + static_cast<double>(errs.down))
            / static_cast<double>(errs.sentinels)
        : 0.0;
    probe.sentinelOffset = engine.infer(probe.dRate).sentinelOffset;
    return probe;
}

} // namespace flash::core
