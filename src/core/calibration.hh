/**
 * @file
 * Calibration of an inferred read voltage (paper III-C).
 *
 * When the read at the inferred voltages still fails, the controller
 * compares the number of state-changing cells between V_default and
 * V_infer across the sentinel boundary: NCa (all data cells) against
 * NCs / r (sentinel cells scaled by the reservation ratio). NCa
 * larger means the inferred offset undershot the optimum (case 1,
 * tune further in the same direction); smaller means it overshot
 * (case 2, tune back). Each calibration step moves the sentinel
 * offset by a small delta and re-derives the other voltages.
 */

#ifndef SENTINELFLASH_CORE_CALIBRATION_HH
#define SENTINELFLASH_CORE_CALIBRATION_HH

#include <cstdint>
#include <vector>

#include "nandsim/snapshot.hh"
#include "nandsim/vth_view.hh"

namespace flash::core
{

/** Calibration tuning parameters. */
struct CalibrationParams
{
    /** Step size delta in DAC units. */
    int delta = 2;

    /**
     * Relative tolerance within which NCa and the scaled NCs are
     * considered matching (the "successful prediction" case of the
     * paper's Fig 12): no further tuning.
     */
    double matchTolerance = 0.10;
};

/** Direction decided by one state-change comparison. */
enum class CalibrationCase {
    TuneFurther, ///< case 1: inferred offset undershot
    TuneBack,    ///< case 2: inferred offset overshot
    Converged,   ///< counts match: the sentinel estimate stands
};

/** Measured state-change counts behind one calibration decision. */
struct CalibrationObservation
{
    std::uint64_t nca = 0;      ///< data cells changing state
    std::uint64_t ncs = 0;      ///< sentinel cells changing state
    double scaledNcs = 0.0;     ///< NCs / r (all-cell equivalent)
    bool tuneFurther = false;   ///< case 1 (true) vs case 2 (false)
    CalibrationCase decision = CalibrationCase::Converged;
};

/**
 * Observe the state-change counts between two sentinel-boundary
 * voltages and decide the calibration direction.
 *
 * The sentinel cells are deliberately concentrated in the two states
 * adjacent to the sentinel boundary, so NCs is scaled by the ratio of
 * the data region's population of those two states to the sentinel
 * count (the density-aware form of the paper's NCs / r).
 *
 * @param data Snapshot of the data region.
 * @param sent Snapshot of the sentinel cells.
 * @param k Sentinel boundary (1-based).
 * @param v_default Default sentinel voltage (absolute).
 * @param v_infer Currently inferred sentinel voltage (absolute).
 */
CalibrationObservation observeStateChange(const nand::WordlineSnapshot &data,
                                          const nand::WordlineSnapshot &sent,
                                          int k, int v_default, int v_infer,
                                          double match_tolerance = 0.10);

/**
 * Packed-kernel form of observeStateChange(): NCa and NCs are counted
 * directly over one materialized sense of each view (DAC values from
 * WordlineVthView::senseDac), no histograms needed. Identical
 * decisions to the snapshot overload for voltages inside the model's
 * Vth range.
 */
CalibrationObservation observeStateChange(const nand::WordlineVthView &data,
                                          const std::vector<int> &data_dac,
                                          const nand::WordlineVthView &sent,
                                          const std::vector<int> &sent_dac,
                                          int k, int v_default, int v_infer,
                                          double match_tolerance = 0.10);

/**
 * Next sentinel offset after one calibration step.
 *
 * @param current_offset Current inferred sentinel offset.
 * @param tune_further Decision from observeStateChange().
 * @param d_rate Error-difference rate (fixes the direction when the
 *        current offset is 0).
 * @param delta Step size.
 */
int calibratedOffset(int current_offset, bool tune_further, double d_rate,
                     int delta);

} // namespace flash::core

#endif // SENTINELFLASH_CORE_CALIBRATION_HH
