#include "core/read_policy.hh"

#include <algorithm>
#include <cmath>

#include "core/error_difference.hh"
#include "util/logging.hh"

namespace flash::core
{

double
sessionLatencyUs(const ReadSessionResult &session,
                 const LatencyParams &params)
{
    // Every attempt pays the fixed overhead and a decode try; sense
    // cost scales with the voltages applied. An assist read is a
    // single-voltage on-die sense: fixed command overhead only (its
    // sense op is part of senseOps), no transfer, no decode. The page
    // crosses to the controller once per session.
    if (session.attempts == 0 && session.assistReads == 0
        && session.senseOps == 0) {
        return 0.0;
    }
    return session.attempts * (params.baseUs + params.decodeUs)
        + session.assistReads * params.baseUs
        + session.senseOps * params.senseUs + params.transferUs;
}

void
recordSession(util::MetricsRegistry &metrics,
              const ReadSessionResult &session, double latency_us)
{
    metrics.add("read.sessions");
    // Delta 0 still materializes the counter: every export carries the
    // full schema, so metrics_diff never sees a key appear or vanish.
    metrics.add("read.failures", session.success ? 0u : 1u);
    metrics.add("read.attempts", static_cast<std::uint64_t>(session.attempts));
    metrics.add("read.retries",
                static_cast<std::uint64_t>(session.retries()));
    metrics.add("read.sense_ops",
                static_cast<std::uint64_t>(session.senseOps));
    metrics.add("read.assist_reads",
                static_cast<std::uint64_t>(session.assistReads));
    metrics.add("read.calib.case1_tune_further",
                static_cast<std::uint64_t>(session.calibTuneFurther));
    metrics.add("read.calib.case2_tune_back",
                static_cast<std::uint64_t>(session.calibTuneBack));
    metrics.add("read.calib.converged",
                static_cast<std::uint64_t>(session.calibConverged));
    metrics.observe("read.latency_us", latency_us);
    metrics.observe("read.attempts_per_read", session.attempts);
    metrics.observe("read.sense_ops_per_read", session.senseOps);
}

ReadContext::ReadContext(const nand::Chip &chip, int block, int wl,
                         int page, const ecc::EccModel &ecc_model,
                         std::optional<nand::SentinelOverlay> overlay,
                         nand::ReadClock clock)
    : chip_(&chip), block_(block), wl_(wl), page_(page), ecc_(&ecc_model),
      overlay_(std::move(overlay)), seq_(clock.session(block, wl))
{
    util::fatalIf(page < 0 || page >= chip.geometry().pagesPerWordline(),
                  "ReadContext: page out of range");
}

const nand::WordlineVthView &
ReadContext::dataView()
{
    if (!dataView_) {
        dataView_.emplace(
            nand::WordlineVthView::dataRegion(*chip_, block_, wl_));
    }
    return *dataView_;
}

const nand::WordlineVthView &
ReadContext::sentView()
{
    util::fatalIf(!overlay_, "ReadContext: no sentinel overlay");
    if (!sentView_) {
        sentView_.emplace(nand::WordlineVthView(
            *chip_, block_, wl_, overlay_->start,
            overlay_->start + overlay_->count));
    }
    return *sentView_;
}

const nand::WordlineSnapshot &
ReadContext::dataSnap()
{
    if (!data_)
        data_.emplace(dataView(), seq_.next());
    return *data_;
}

const nand::WordlineSnapshot &
ReadContext::sentSnap()
{
    if (!sent_)
        sent_.emplace(sentView(), seq_.next());
    return *sent_;
}

std::uint64_t
ReadContext::pageErrors(const std::vector<int> &voltages)
{
    return dataSnap().pageErrors(page_, voltages);
}

bool
ReadContext::decodable(const std::vector<int> &voltages)
{
    return ecc_->pageDecodable(pageErrors(voltages), dataSnap().cells());
}

int
ReadContext::pageSenseOps() const
{
    return static_cast<int>(
        chip_->grayCode().boundariesOfPage(page_).size());
}

namespace
{

/**
 * Vendor tables encode the batch's typical shift profile; express it
 * as the pairwise-average retention sensitivity of each boundary,
 * normalized at the sentinel (mid) boundary.
 */
std::vector<double>
vendorProfile(const nand::VoltageModel &model)
{
    const int states = model.states();
    std::vector<double> profile(static_cast<std::size_t>(states), 0.0);
    const auto &sens = model.params().stateSens;
    const int mid = states / 2;
    const double norm =
        0.5 * (sens[static_cast<std::size_t>(mid - 1)]
               + sens[static_cast<std::size_t>(mid)]);
    for (int k = 1; k < states; ++k) {
        profile[static_cast<std::size_t>(k)] =
            0.5 * (sens[static_cast<std::size_t>(k - 1)]
                   + sens[static_cast<std::size_t>(k)]) / norm;
    }
    return profile;
}

/** Record one attempt at a voltage set; returns decodability. */
bool
attempt(ReadContext &ctx, const std::vector<int> &voltages,
        ReadSessionResult &session)
{
    ++session.attempts;
    const int sense_ops = ctx.pageSenseOps();
    session.senseOps += sense_ops;
    session.finalVoltages = voltages;
    session.finalErrors = ctx.pageErrors(voltages);
    session.success = ctx.decodable(voltages);
    if (util::SpanBuffer *sb = ctx.spanBuffer()) {
        const int s = sb->begin("attempt", ctx.spanRoot());
        sb->num(s, "n", session.attempts);
        sb->num(s, "sense_ops", sense_ops);
        sb->num(s, "errors", static_cast<double>(session.finalErrors));
        sb->num(s, "decoded", session.success ? 1.0 : 0.0);
    }
    return session.success;
}

} // namespace

VendorRetryPolicy::VendorRetryPolicy(const nand::VoltageModel &model,
                                     int max_retries, double step_dac)
    : defaults_(model.defaultVoltages()), profile_(vendorProfile(model)),
      maxRetries_(max_retries), stepDac_(step_dac)
{
    util::fatalIf(max_retries < 1, "VendorRetryPolicy: bad retry budget");
}

std::vector<int>
VendorRetryPolicy::retryVoltages(int i) const
{
    std::vector<int> v(defaults_);
    for (std::size_t k = 1; k < v.size(); ++k) {
        v[k] -= static_cast<int>(
            std::lround(i * stepDac_ * profile_[k]));
    }
    return v;
}

ReadSessionResult
VendorRetryPolicy::read(ReadContext &ctx) const
{
    ReadSessionResult session;
    if (attempt(ctx, defaults_, session))
        return session;
    for (int i = 1; i <= maxRetries_; ++i) {
        if (attempt(ctx, retryVoltages(i), session))
            return session;
    }
    return session;
}

ReadSessionResult
OraclePolicy::read(ReadContext &ctx) const
{
    ReadSessionResult session;
    if (!firstOptimal_ && attempt(ctx, defaults_, session))
        return session;
    const auto optimal = oracle_.optimalVoltages(ctx.dataSnap(), defaults_);
    attempt(ctx, optimal, session);
    return session;
}

TrackingPolicy::TrackingPolicy(const nand::VoltageModel &model,
                               int reference_wl, int max_retries,
                               double step_dac)
    : defaults_(model.defaultVoltages()), profile_(vendorProfile(model)),
      tracked_(defaults_), referenceWl_(reference_wl),
      maxRetries_(max_retries), stepDac_(step_dac)
{
    util::fatalIf(max_retries < 1, "TrackingPolicy: bad retry budget");
    util::fatalIf(reference_wl < 0,
                  "TrackingPolicy: bad reference wordline");
}

void
TrackingPolicy::track(const nand::Chip &chip, int block,
                      nand::ReadClock clock)
{
    util::fatalIf(referenceWl_ >= chip.geometry().wordlinesPerBlock(),
                  "TrackingPolicy: reference wordline out of range");
    const auto snap = nand::WordlineSnapshot::dataRegion(
        chip, block, referenceWl_,
        clock.session(block, referenceWl_).next());
    tracked_ = oracle_.optimalVoltages(snap, defaults_);
}

ReadSessionResult
TrackingPolicy::read(ReadContext &ctx) const
{
    ReadSessionResult session;
    if (attempt(ctx, tracked_, session))
        return session;
    // Fall back to profile stepping around the tracked point, probing
    // both directions (the tracked point may over- or undershoot this
    // wordline's optimum).
    for (int i = 1; i <= maxRetries_; ++i) {
        std::vector<int> v(tracked_);
        const int step = (i + 1) / 2;
        const int sign = (i % 2) ? -1 : 1;
        for (std::size_t k = 1; k < v.size(); ++k) {
            v[k] += sign
                * static_cast<int>(
                      std::lround(step * stepDac_ * profile_[k]));
        }
        if (attempt(ctx, v, session))
            return session;
    }
    return session;
}

SentinelPolicy::SentinelPolicy(const Characterization &tables,
                               std::vector<int> defaults,
                               CalibrationParams calibration,
                               int max_retries)
    : engine_(tables, std::move(defaults)), calibration_(calibration),
      maxRetries_(max_retries)
{
    util::fatalIf(max_retries < 1, "SentinelPolicy: bad retry budget");
}

void
SentinelPolicy::setFirstReadVoltages(std::vector<int> voltages)
{
    util::fatalIf(!voltages.empty()
                      && voltages.size() != engine_.defaults().size(),
                  "SentinelPolicy: first-read voltage size mismatch");
    firstRead_ = std::move(voltages);
}

ReadSessionResult
SentinelPolicy::read(ReadContext &ctx) const
{
    ReadSessionResult session;

    BlockEpoch epoch;
    if (cache_ || model_)
        epoch = epochOf(ctx.chip().blockAge(ctx.block()));

    // Model-predicted fast path: a confident closed-form prediction
    // reads directly at the predicted offset — one attempt, no assist
    // sense, no cache dependency. A decode failure falls through to
    // the cache/assist path below; the model is not re-fed its own
    // prediction (only newly inferred or calibrated offsets train it).
    if (model_) {
        const VoltagePrediction pred =
            model_->predict(ctx.block(), epoch);
        if (util::SpanBuffer *sb = ctx.spanBuffer()) {
            const int s = sb->begin("model_predict", ctx.spanRoot());
            sb->num(s, "offset", pred.sentinelOffset);
            sb->num(s, "confidence", pred.confidence);
            sb->num(s, "gated", pred.confident ? 1.0 : 0.0);
        }
        if (pred.confident) {
            model_->noteFastAttempt();
            if (attempt(ctx, engine_.inferAt(pred.sentinelOffset).voltages,
                        session)) {
                model_->noteFastHit();
                return session;
            }
            model_->noteFastMiss();
        } else {
            model_->noteLowConfidence();
        }
    }

    // Cache-seeded fast path: the block's last successful sentinel
    // offset, valid only under the aging epoch it was inferred in. A
    // decode at the seeded voltages costs one attempt and no assist
    // read. Exactly one lookup per session, so the cache's hit + miss
    // + stale counters sum to the policy's session count.
    std::optional<int> seeded;
    if (cache_) {
        seeded = cache_->lookup(ctx.block(), epoch);
        if (seeded && attempt(ctx, engine_.inferAt(*seeded).voltages,
                              session)) {
            cache_->store(ctx.block(), epoch, *seeded);
            return session;
        }
    }

    const std::vector<int> &first =
        firstRead_.empty() ? engine_.defaults() : firstRead_;
    if (attempt(ctx, first, session))
        return session;

    util::fatalIf(!ctx.overlay(),
                  "SentinelPolicy: wordline has no sentinel overlay");
    const int k_s = engine_.sentinelBoundary();
    const int v_s_default =
        engine_.defaults()[static_cast<std::size_t>(k_s)];

    // The sentinel voltage is sensed by the LSB page; any other page
    // needs one cheap single-voltage assist read to see the sentinel
    // errors.
    const auto &page_ks =
        ctx.chip().grayCode().boundariesOfPage(ctx.page());
    // The failed read only supplies the sentinel errors if it sensed
    // the sentinel boundary at its default voltage.
    const bool sensed_already =
        std::find(page_ks.begin(), page_ks.end(), k_s) != page_ks.end()
        && first[static_cast<std::size_t>(k_s)] == v_s_default;
    if (!sensed_already) {
        ++session.assistReads;
        ++session.senseOps;
        if (util::SpanBuffer *sb = ctx.spanBuffer()) {
            const int s = sb->begin("assist_read", ctx.spanRoot());
            sb->num(s, "sentinel_v", v_s_default);
        }
    }

    const double d =
        countSentinelErrors(ctx.sentSnap(), k_s, v_s_default).dRate();
    InferredVoltages inferred = engine_.infer(d);
    if (attempt(ctx, inferred.voltages, session)) {
        if (cache_)
            cache_->store(ctx.block(), epoch, inferred.sentinelOffset);
        if (model_)
            model_->observe(ctx.block(), epoch, inferred.sentinelOffset);
        return session;
    }

    // Calibration loop: state-change comparison decides the step
    // direction; each step re-derives the other voltages. Once the
    // counts match (converged), the sentinel estimate stands and the
    // remaining budget probes +/- delta around it.
    int offset = inferred.sentinelOffset;
    int probe = 0;
    bool converged = false;
    while (session.attempts <= maxRetries_) {
        if (!converged) {
            const int v_s_cur = v_s_default + offset;
            const auto obs = observeStateChange(
                ctx.dataSnap(), ctx.sentSnap(), k_s, v_s_default, v_s_cur,
                calibration_.matchTolerance);
            if (obs.decision == CalibrationCase::Converged) {
                converged = true;
                ++session.calibConverged;
            } else {
                const bool further =
                    obs.decision == CalibrationCase::TuneFurther;
                ++(further ? session.calibTuneFurther
                           : session.calibTuneBack);
                offset = calibratedOffset(offset, further, d,
                                          calibration_.delta);
            }
            if (util::SpanBuffer *sb = ctx.spanBuffer()) {
                const int s = sb->begin("calib_step", ctx.spanRoot());
                sb->num(s, "case",
                        obs.decision == CalibrationCase::Converged ? 0.0
                            : obs.decision == CalibrationCase::TuneFurther
                            ? 1.0
                            : 2.0);
                sb->num(s, "offset", offset);
            }
        }
        int try_offset = offset;
        if (converged) {
            ++probe;
            const int step = (probe + 1) / 2;
            try_offset += (probe % 2 ? 1 : -1) * step * calibration_.delta;
        }
        if (attempt(ctx, engine_.inferAt(try_offset).voltages, session)) {
            if (cache_)
                cache_->store(ctx.block(), epoch, try_offset);
            if (model_)
                model_->observe(ctx.block(), epoch, try_offset);
            return session;
        }
    }
    return session;
}

} // namespace flash::core
