#include "core/characterization.hh"

#include <algorithm>
#include <cmath>

#include "core/error_difference.hh"
#include "nandsim/oracle.hh"
#include "nandsim/read_seq.hh"
#include "nandsim/snapshot.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace flash::core
{

namespace
{

std::vector<CharCondition>
defaultConditions()
{
    std::vector<CharCondition> out;
    for (std::uint32_t pe : {0u, 1000u, 3000u, 5000u}) {
        for (double hours : {24.0, 720.0, 4380.0, 8760.0})
            out.push_back({pe, hours});
    }
    return out;
}

} // namespace

FactoryCharacterizer::FactoryCharacterizer(CharOptions options)
    : options_(std::move(options))
{
    if (options_.conditions.empty())
        options_.conditions = defaultConditions();
    util::fatalIf(options_.wordlineStride < 1,
                  "characterizer: stride must be >= 1");
    util::fatalIf(options_.polyDegree < 1,
                  "characterizer: polyDegree must be >= 1");
    util::fatalIf(options_.threads < 1,
                  "characterizer: threads must be >= 1");
}

Characterization
FactoryCharacterizer::run(nand::Chip &chip, double temp_band_c) const
{
    const auto &geom = chip.geometry();
    const int block = options_.block;
    const int k_s = resolveSentinelBoundary(geom, options_.sentinel);
    const auto overlay = makeOverlay(geom, options_.sentinel);
    const auto defaults = chip.model().defaultVoltages();
    const int v_s = defaults[static_cast<std::size_t>(k_s)];
    const nand::OracleSearch oracle;

    chip.programBlock(block, chip.seed() ^ 0xc4a7ULL, overlay);
    const nand::BlockAge saved = chip.blockAge(block);

    Characterization out;
    out.sentinelBoundary = k_s;
    out.tempBandC = temp_band_c;

    // Per-boundary (sentinel optimal, boundary optimal) samples.
    const auto nb = static_cast<std::size_t>(geom.states());
    std::vector<std::vector<double>> xs(nb), ys(nb);

    std::vector<int> wls;
    for (int wl = 0; wl < geom.wordlinesPerBlock();
         wl += options_.wordlineStride) {
        wls.push_back(wl);
    }

    /** Per-wordline measurements of one aging condition. */
    struct WlSample
    {
        double d = 0.0;
        std::vector<double> offsets; ///< 1-based by boundary
    };

    for (std::size_t ci = 0; ci < options_.conditions.size(); ++ci) {
        const CharCondition &cond = options_.conditions[ci];
        chip.setPeCycles(block, cond.peCycles);
        chip.refresh(block);
        // Age so the effective hours land on the condition while the
        // recorded retention temperature is the band's.
        const double raw_hours = cond.effRetentionHours
            / chip.model().arrheniusFactor(temp_band_c);
        chip.age(block, raw_hours, temp_band_c);

        // Aging above is the last chip mutation; the sweep below only
        // reads, and each wordline's noise seeds derive from
        // (readStream, condition, wordline), so the sampled wordlines
        // can run on any number of threads. The reduction into the
        // fit-sample vectors stays sequential in wordline order.
        const nand::ReadClock clock(
            util::hashCombine(options_.readStream, ci));
        std::vector<WlSample> samples(wls.size());
        util::parallelFor(
            options_.threads, static_cast<int>(wls.size()), [&](int i) {
                const int wl = wls[static_cast<std::size_t>(i)];
                nand::ReadSeq seq = clock.session(block, wl);
                const auto data = nand::WordlineSnapshot::dataRegion(
                    chip, block, wl, seq.next());
                const auto sent =
                    sentinelSnapshot(chip, block, wl, overlay, seq.next());

                const auto opts = oracle.optimalOffsets(data, defaults);
                WlSample &s = samples[static_cast<std::size_t>(i)];
                s.d = countSentinelErrors(sent, k_s, v_s).dRate();
                s.offsets.assign(nb, 0.0);
                for (int k = 1; k < geom.states(); ++k) {
                    s.offsets[static_cast<std::size_t>(k)] =
                        opts[static_cast<std::size_t>(k)].offset;
                }
            });

        for (const WlSample &s : samples) {
            const double opt_s = s.offsets[static_cast<std::size_t>(k_s)];
            out.dSamples.push_back(s.d);
            out.voptSamples.push_back(opt_s);
            for (int k = 1; k < geom.states(); ++k) {
                xs[static_cast<std::size_t>(k)].push_back(opt_s);
                ys[static_cast<std::size_t>(k)].push_back(
                    s.offsets[static_cast<std::size_t>(k)]);
            }
        }
    }

    chip.blockAge(block) = saved;

    out.samples = out.dSamples.size();
    const auto [dmin, dmax] = std::minmax_element(out.dSamples.begin(),
                                                  out.dSamples.end());
    util::fatalIf(out.dSamples.empty() || *dmax - *dmin < 1e-9,
                  "characterizer: sentinel error-difference samples are "
                  "degenerate; too few sentinel cells for this geometry "
                  "(raise SentinelConfig::ratio) or conditions too mild");
    out.dToVopt = util::polyfit(out.dSamples, out.voptSamples,
                                static_cast<std::size_t>(options_.polyDegree));
    out.dFitRmse =
        util::polyfitRmse(out.dToVopt, out.dSamples, out.voptSamples);

    out.crossVoltage.resize(nb);
    for (int k = 1; k < geom.states(); ++k) {
        out.crossVoltage[static_cast<std::size_t>(k)] = util::linearFit(
            xs[static_cast<std::size_t>(k)], ys[static_cast<std::size_t>(k)]);
    }
    return out;
}

std::vector<Characterization>
FactoryCharacterizer::runBands(nand::Chip &chip,
                               const std::vector<double> &band_temps) const
{
    util::fatalIf(band_temps.empty(), "characterizer: no bands given");
    std::vector<Characterization> out;
    out.reserve(band_temps.size());
    for (double t : band_temps)
        out.push_back(run(chip, t));
    return out;
}

const Characterization &
selectBand(const std::vector<Characterization> &bands, double ret_temp_c)
{
    util::fatalIf(bands.empty(), "selectBand: empty band set");
    const Characterization *best = &bands.front();
    double best_dist = std::fabs(best->tempBandC - ret_temp_c);
    for (const auto &b : bands) {
        const double dist = std::fabs(b.tempBandC - ret_temp_c);
        if (dist < best_dist) {
            best = &b;
            best_dist = dist;
        }
    }
    return *best;
}

} // namespace flash::core
