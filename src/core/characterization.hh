/**
 * @file
 * Factory characterization (paper III-B and III-D).
 *
 * At manufacturing time, one or a few chips of a batch are swept over
 * P/E-cycle and retention conditions to fit (a) the degree-5
 * polynomial mapping the sentinel error-difference rate d to the
 * optimal sentinel-voltage offset, and (b) the per-boundary linear
 * correlation between the optimal sentinel offset and every other
 * boundary's optimal offset. The fits are then programmed into all
 * chips of the batch; one correlation table is kept per temperature
 * band because temperature tilts the retention-sensitivity profile.
 */

#ifndef SENTINELFLASH_CORE_CHARACTERIZATION_HH
#define SENTINELFLASH_CORE_CHARACTERIZATION_HH

#include <cstdint>
#include <vector>

#include "core/sentinel_layout.hh"
#include "nandsim/chip.hh"
#include "util/linear_fit.hh"
#include "util/polyfit.hh"

namespace flash::core
{

/** One aging condition of the characterization sweep. */
struct CharCondition
{
    std::uint32_t peCycles = 0;
    double effRetentionHours = 0.0; ///< room-equivalent hours
};

/** Characterization sweep options. */
struct CharOptions
{
    SentinelConfig sentinel;

    /** Aging grid; empty selects a representative default grid. */
    std::vector<CharCondition> conditions;

    /** Sample every Nth wordline of the block. */
    int wordlineStride = 8;

    /** Degree of the d -> Vopt polynomial (paper uses 5). */
    int polyDegree = 5;

    /** Block used for the sweep. */
    int block = 0;

    /**
     * Worker threads of the per-condition wordline sweep. The chip is
     * only read inside the sweep, and each wordline's sensing noise
     * derives from (readStream, condition, wordline), so the fitted
     * tables are bit-identical at every thread count.
     */
    int threads = 1;

    /** Read-noise stream key of the sweep (see nand::ReadClock). */
    std::uint64_t readStream = 0xFAC7;
};

/** The tables programmed into every chip of the batch. */
struct Characterization
{
    int sentinelBoundary = 0;

    /** d rate -> optimal sentinel-voltage offset. */
    util::Polynomial dToVopt;

    /**
     * Per-boundary linear maps from the optimal sentinel offset to
     * the boundary's optimal offset (1-based; entry at the sentinel
     * boundary is the identity).
     */
    std::vector<util::LinearFit> crossVoltage;

    /** RMSE of the polynomial fit (DAC units). */
    double dFitRmse = 0.0;

    /** Temperature band this table was characterized for (deg C). */
    double tempBandC = 25.0;

    /** Samples used. */
    std::size_t samples = 0;

    /** Raw fit samples, kept for the Fig 8 / Fig 10 harnesses. */
    std::vector<double> dSamples;
    std::vector<double> voptSamples;
};

/**
 * Runs the factory sweep on a chip. The sweep mutates the target
 * block's age and content (it is a factory process); the block age is
 * restored afterwards, the sentinel overlay stays programmed.
 */
class FactoryCharacterizer
{
  public:
    explicit FactoryCharacterizer(CharOptions options);

    /** Characterize one temperature band. */
    Characterization run(nand::Chip &chip, double temp_band_c = 25.0) const;

    /** Characterize several bands (paper III-D keeps one table each). */
    std::vector<Characterization>
    runBands(nand::Chip &chip, const std::vector<double> &band_temps) const;

    /** Options in use. */
    const CharOptions &options() const { return options_; }

  private:
    CharOptions options_;
};

/**
 * Pick the characterization table whose temperature band is closest
 * to the block's retention temperature.
 */
const Characterization &
selectBand(const std::vector<Characterization> &bands, double ret_temp_c);

} // namespace flash::core

#endif // SENTINELFLASH_CORE_CHARACTERIZATION_HH
