#include "core/error_difference.hh"

#include "util/logging.hh"

namespace flash::core
{

nand::WordlineSnapshot
sentinelSnapshot(const nand::Chip &chip, int block, int wl,
                 const nand::SentinelOverlay &overlay,
                 std::uint64_t read_seq)
{
    util::fatalIf(overlay.count <= 0, "sentinelSnapshot: empty overlay");
    return nand::WordlineSnapshot(chip, block, wl, read_seq, overlay.start,
                                  overlay.start + overlay.count);
}

SentinelErrors
countSentinelErrors(const nand::WordlineSnapshot &sent_snap, int k,
                    int voltage)
{
    SentinelErrors e;
    e.up = sent_snap.upErrors(k, voltage);
    e.down = sent_snap.downErrors(k, voltage);
    e.sentinels = sent_snap.cells();
    return e;
}

} // namespace flash::core
