#include "core/error_difference.hh"

#include "util/logging.hh"

namespace flash::core
{

nand::WordlineSnapshot
sentinelSnapshot(const nand::Chip &chip, int block, int wl,
                 const nand::SentinelOverlay &overlay,
                 std::uint64_t read_seq)
{
    util::fatalIf(overlay.count <= 0, "sentinelSnapshot: empty overlay");
    return nand::WordlineSnapshot(chip, block, wl, read_seq, overlay.start,
                                  overlay.start + overlay.count);
}

SentinelErrors
countSentinelErrors(const nand::WordlineSnapshot &sent_snap, int k,
                    int voltage)
{
    SentinelErrors e;
    e.up = sent_snap.upErrors(k, voltage);
    e.down = sent_snap.downErrors(k, voltage);
    e.sentinels = sent_snap.cells();
    return e;
}

SentinelMasks::SentinelMasks(const nand::WordlineVthView &view, int k)
    : low(view.cells()), high(view.cells())
{
    util::fatalIf(k < 1 || k >= view.chip().geometry().states(),
                  "SentinelMasks: boundary out of range");
    for (std::size_t i = 0; i < view.cells(); ++i) {
        const int s = view.state(i);
        if (s == k - 1)
            low.set(i);
        else if (s == k)
            high.set(i);
    }
}

SentinelErrors
countSentinelErrors(const nand::WordlineVthView &sent_view,
                    const SentinelMasks &masks,
                    const std::vector<int> &sent_dac, int voltage)
{
    const util::Bitplane above = sent_view.senseAbove(sent_dac, voltage);
    SentinelErrors e;
    e.up = util::andCount(masks.low, above);      // misread upward
    e.down = util::andNotCount(masks.high, above); // misread downward
    e.sentinels = sent_view.cells();
    return e;
}

} // namespace flash::core
