/**
 * @file
 * Sentinel cell placement and programming pattern.
 *
 * A small fraction (0.2% by default) of every wordline is reserved in
 * the spare OOB tail and programmed half/half to the two states
 * around the sentinel voltage (S3/S4 for TLC, S7/S8 for QLC), so a
 * read at the sentinel voltage reveals exact up/down error counts.
 */

#ifndef SENTINELFLASH_CORE_SENTINEL_LAYOUT_HH
#define SENTINELFLASH_CORE_SENTINEL_LAYOUT_HH

#include "nandsim/chip.hh"
#include "nandsim/geometry.hh"

namespace flash::core
{

/** Sentinel reservation parameters. */
struct SentinelConfig
{
    /** Fraction of wordline cells reserved as sentinels. */
    double ratio = 0.002;

    /**
     * Sentinel read voltage (1-based boundary). <= 0 selects the
     * paper's default: V4 for TLC, V8 for QLC (the LSB boundary,
     * so the assist read is a cheap single-voltage LSB read).
     */
    int sentinelBoundary = 0;
};

/** The paper's default sentinel boundary for a cell type. */
int defaultSentinelBoundary(nand::CellType type);

/** Resolve the configured boundary (applying the default rule). */
int resolveSentinelBoundary(const nand::ChipGeometry &geom,
                            const SentinelConfig &config);

/**
 * Build the sentinel overlay for a geometry: a contiguous run at the
 * very end of the OOB area (even count), alternating between the two
 * states adjacent to the sentinel voltage.
 */
nand::SentinelOverlay makeOverlay(const nand::ChipGeometry &geom,
                                  const SentinelConfig &config);

} // namespace flash::core

#endif // SENTINELFLASH_CORE_SENTINEL_LAYOUT_HH
