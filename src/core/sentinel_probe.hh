/**
 * @file
 * Sentinel-only probe read: the maintenance-path entry point into the
 * paper's inference machinery.
 *
 * A probe is exactly one single-voltage assist read of a wordline's
 * sentinel cells (command overhead plus one sense op — no page
 * transfer, no ECC decode): it measures the sentinel error-difference
 * rate at the default sentinel voltage and runs the same
 * InferenceEngine the SentinelPolicy uses to turn it into a full
 * voltage offset. The background scrubber issues probes during idle
 * windows to re-warm the per-block VoltageCache before foreground
 * reads miss; the health monitor uses the same entry point for its
 * per-block drift telemetry.
 */

#ifndef SENTINELFLASH_CORE_SENTINEL_PROBE_HH
#define SENTINELFLASH_CORE_SENTINEL_PROBE_HH

#include <cstdint>

#include "core/inference.hh"
#include "nandsim/chip.hh"

namespace flash::core
{

/** What one sentinel-only probe read observed. */
struct SentinelProbe
{
    /**
     * Signed sentinel error-difference rate at the default sentinel
     * voltage, (up - down) / sentinels — the quantity the inference
     * tables map to a voltage offset.
     */
    double dRate = 0.0;

    /**
     * Unsigned sentinel error rate, (up + down) / sentinels. Because
     * the sentinel pattern is known, this is an exact bit-error rate
     * of the sentinel region and serves as the scrubber's cheap RBER
     * estimate of the wordline.
     */
    double errorRate = 0.0;

    /** Sentinel offset inferred from dRate via the factory tables. */
    int sentinelOffset = 0;
};

/**
 * Issue one sentinel-only probe read of (block, wl): sense the
 * sentinel cells once at the default sentinel voltage (noise keyed by
 * @p read_seq), count the error difference, and infer the sentinel
 * offset through @p engine — the identical inference step
 * SentinelPolicy::read performs after a failed foreground read, minus
 * the foreground read.
 */
SentinelProbe probeSentinel(const nand::Chip &chip, int block, int wl,
                            const InferenceEngine &engine,
                            const nand::SentinelOverlay &overlay,
                            std::uint64_t read_seq);

} // namespace flash::core

#endif // SENTINELFLASH_CORE_SENTINEL_PROBE_HH
