/**
 * @file
 * Sentinel error-difference measurement (paper Fig 9).
 *
 * Because the sentinel pattern is known, a single sense at the
 * sentinel voltage yields exact up/down error counts; their
 * difference rate d tracks how far the two adjacent states have
 * drifted past the default voltage.
 */

#ifndef SENTINELFLASH_CORE_ERROR_DIFFERENCE_HH
#define SENTINELFLASH_CORE_ERROR_DIFFERENCE_HH

#include <cstdint>

#include "nandsim/chip.hh"
#include "nandsim/snapshot.hh"

namespace flash::core
{

/** Up/down errors observed on the sentinel cells. */
struct SentinelErrors
{
    std::uint64_t up = 0;    ///< low-state cells misread high
    std::uint64_t down = 0;  ///< high-state cells misread low
    std::uint64_t sentinels = 0;

    /** Signed error-difference rate d = (up - down) / sentinels. */
    double
    dRate() const
    {
        if (sentinels == 0)
            return 0.0;
        return (static_cast<double>(up) - static_cast<double>(down))
            / static_cast<double>(sentinels);
    }
};

/**
 * Snapshot just the sentinel columns of a wordline (a few hundred
 * cells; cheap).
 */
nand::WordlineSnapshot sentinelSnapshot(const nand::Chip &chip, int block,
                                        int wl,
                                        const nand::SentinelOverlay &overlay,
                                        std::uint64_t read_seq);

/**
 * Count sentinel up/down errors at @p voltage for boundary @p k
 * (the overlay's boundary).
 */
SentinelErrors countSentinelErrors(const nand::WordlineSnapshot &sent_snap,
                                   int k, int voltage);

} // namespace flash::core

#endif // SENTINELFLASH_CORE_ERROR_DIFFERENCE_HH
