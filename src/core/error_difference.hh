/**
 * @file
 * Sentinel error-difference measurement (paper Fig 9).
 *
 * Because the sentinel pattern is known, a single sense at the
 * sentinel voltage yields exact up/down error counts; their
 * difference rate d tracks how far the two adjacent states have
 * drifted past the default voltage.
 */

#ifndef SENTINELFLASH_CORE_ERROR_DIFFERENCE_HH
#define SENTINELFLASH_CORE_ERROR_DIFFERENCE_HH

#include <cstdint>
#include <vector>

#include "nandsim/chip.hh"
#include "nandsim/snapshot.hh"
#include "nandsim/vth_view.hh"
#include "util/bitplane.hh"

namespace flash::core
{

/** Up/down errors observed on the sentinel cells. */
struct SentinelErrors
{
    std::uint64_t up = 0;    ///< low-state cells misread high
    std::uint64_t down = 0;  ///< high-state cells misread low
    std::uint64_t sentinels = 0;

    /** Signed error-difference rate d = (up - down) / sentinels. */
    double
    dRate() const
    {
        if (sentinels == 0)
            return 0.0;
        return (static_cast<double>(up) - static_cast<double>(down))
            / static_cast<double>(sentinels);
    }
};

/**
 * Snapshot just the sentinel columns of a wordline (a few hundred
 * cells; cheap).
 */
nand::WordlineSnapshot sentinelSnapshot(const nand::Chip &chip, int block,
                                        int wl,
                                        const nand::SentinelOverlay &overlay,
                                        std::uint64_t read_seq);

/**
 * Count sentinel up/down errors at @p voltage for boundary @p k
 * (the overlay's boundary).
 */
SentinelErrors countSentinelErrors(const nand::WordlineSnapshot &sent_snap,
                                   int k, int voltage);

/**
 * Packed true-state masks of a sentinel-range view: which cells are
 * programmed to the state below/above boundary @p k. Build once per
 * view, then every threshold query is two popcount kernels.
 */
struct SentinelMasks
{
    SentinelMasks(const nand::WordlineVthView &view, int k);

    util::Bitplane low;  ///< cells truly in state k-1
    util::Bitplane high; ///< cells truly in state k
};

/**
 * Packed sentinel error count: up errors are low-state cells sensed
 * above @p voltage, down errors high-state cells sensed at or below
 * it. @p sent_dac is one sense of the view (WordlineVthView::
 * senseDac). Counts match the snapshot-based overload for any
 * threshold inside the model's Vth range (the histogram clamps tail
 * values into its edge bins, the DAC values are unclamped).
 */
SentinelErrors countSentinelErrors(const nand::WordlineVthView &sent_view,
                                   const SentinelMasks &masks,
                                   const std::vector<int> &sent_dac,
                                   int voltage);

} // namespace flash::core

#endif // SENTINELFLASH_CORE_ERROR_DIFFERENCE_HH
